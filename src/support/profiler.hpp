// In-process observability for runtime-generated code (paper §VIII):
//
//  - A CODE-REGION INDEX: every generated blob (specialization, dispatch
//    stub, guard, entry trampoline) registers its [base, base+size) range,
//    provenance name and config fingerprint. Lookup is async-signal-safe
//    (seqlock-published slots, no locks, no allocation) so both the SIGPROF
//    sampler and the crash handler can attribute a PC from signal context.
//
//  - A SAMPLING PROFILER: setitimer(ITIMER_PROF)/SIGPROF drives an
//    async-signal-safe handler that pushes the interrupted PC into a
//    per-thread lock-free SPSC ring; a background drain thread resolves
//    PCs against the region index into per-specialization sample counts
//    (CPU time, not call counts). Snapshots export via profileSnapshot()/
//    writeProfileJson(), ride in the BREW_STATS report, and can feed the
//    VariantDispatcher as a hotness prior through a registered sink.
//
//  - CRASH ATTRIBUTION: a SIGSEGV/SIGBUS/SIGILL handler that, when the
//    faulting PC lands in a brew-owned region, writes the specialization's
//    provenance name, fingerprint, a disassembly/hex window and the flight
//    recorder's recent events to stderr and BREW_CRASH_FILE before
//    re-raising with the original disposition.
//
// Env switches (read once): BREW_PROFILE_HZ (sampling rate; autostarted by
// SpecManager), BREW_PROFILE_FILE (profile JSON written at exit),
// BREW_CRASH_FILE (crash report path), BREW_CRASH_HANDLER=0 (opt out of
// the fault handlers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace brew::prof {

// ---------------------------------------------------------------------------
// Code-region index
// ---------------------------------------------------------------------------

struct CodeRegion {
  uint64_t base = 0;
  uint64_t size = 0;
  uint64_t fingerprint = 0;
  char name[96] = {};
};

// Publishes [code, code+size) under `name`. Called on every install (via
// perf_map.cpp's registerGeneratedCode); re-registering an existing base
// updates it in place. Takes a mutex; NOT for signal context.
void registerCodeRegion(const void* code, size_t size, const char* name,
                        uint64_t fingerprint) noexcept;

// Drops the region starting at `base` (ExecMemory::notifyFree hook).
void unregisterCodeRegion(const void* base, size_t size) noexcept;

// Copies the region covering `pc` into *out. Lock-free and
// async-signal-safe; returns false when the PC is not brew-owned.
bool lookupCodeRegion(uint64_t pc, CodeRegion* out) noexcept;

// Live registered regions (tests).
size_t codeRegionCount() noexcept;

// ---------------------------------------------------------------------------
// Sampling profiler
// ---------------------------------------------------------------------------

bool profilerRunning() noexcept;

// Installs the SIGPROF handler, starts the drain thread and arms
// ITIMER_PROF at `hz` (clamped to [1, 10000]). Idempotent while running
// (the rate is not re-armed). Returns false if the timer cannot be set.
bool startProfiler(int hz);

// Disarms the timer, drains outstanding samples and joins the drain
// thread. Sample totals survive for snapshotting.
void stopProfiler();

// Forces one synchronous drain pass (exporters and tests; safe whether or
// not the profiler is running).
void drainSamplesNow();

// Pushes `pc` through the same per-thread ring the SIGPROF handler uses
// (deterministic attribution tests).
void injectSampleForTest(uint64_t pc) noexcept;

struct ProfileEntry {
  std::string name;       // provenance name from the region index
  uint64_t samples = 0;
};

struct ProfileSnapshot {
  uint64_t hz = 0;              // current (or last) sampling rate
  uint64_t totalSamples = 0;    // every PC the handler captured
  uint64_t brewSamples = 0;     // attributed to a brew-owned region
  uint64_t droppedSamples = 0;  // ring full or ring pool exhausted
  std::vector<ProfileEntry> entries;  // sorted by samples, descending
};

// Drains pending samples and returns the aggregate attribution.
ProfileSnapshot profileSnapshot();

// Snapshot as JSON ({"hz":..,"total_samples":..,"entries":[...]}) written
// via tmp+rename. Returns false on I/O failure.
bool writeProfileJson(const char* path);

// Human-readable attribution table (rides in BREW_STATS summaries). No-op
// when the profiler never captured a sample.
void writeProfileSummary(std::FILE* out);

// Drain-time hotness sink: called once per region with fresh CPU samples
// per drain pass (core/dispatch.cpp registers one when profile-guided
// promotion is on). Runs on the drain thread, outside profiler locks.
using SampleSink = void (*)(const void* regionBase, uint64_t samples);
void setSampleSink(SampleSink sink) noexcept;

// ---------------------------------------------------------------------------
// Crash attribution
// ---------------------------------------------------------------------------

// Installs the SIGSEGV/SIGBUS/SIGILL handlers (idempotent; also invoked by
// the first code-region registration unless BREW_CRASH_HANDLER=0).
void installCrashHandler() noexcept;

// Overrides the report path (default: BREW_CRASH_FILE; stderr always gets
// a copy). Pass nullptr to clear.
void setCrashFile(const char* path) noexcept;

// Pluggable disassembler for the crash report's code window, registered by
// code that links isa/ (support/ cannot depend on it). Returns bytes
// written to out (NUL-terminated, possibly multi-line).
using CrashDisassembler = size_t (*)(const uint8_t* code, size_t size,
                                     uint64_t address, char* out, size_t cap);
void setCrashDisassembler(CrashDisassembler fn) noexcept;

}  // namespace brew::prof
