// Async-signal-safe text formatting: the crash handler and the flight
// recorder's dump path must not call snprintf/malloc/locale machinery, so
// they format through these hand-rolled converters and a small buffered
// writer that only ever touches write(2).
#pragma once

#include <unistd.h>

#include <cstddef>
#include <cstdint>

namespace brew::sigfmt {

// Decimal rendering of v into buf (no NUL). Returns chars written.
// buf must hold at least 20 bytes.
inline size_t u64ToDec(uint64_t v, char* buf) noexcept {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

// Hex rendering (lowercase, no "0x", no NUL). buf must hold 16 bytes.
inline size_t u64ToHex(uint64_t v, char* buf) noexcept {
  static constexpr char kDigits[] = "0123456789abcdef";
  char tmp[16];
  size_t n = 0;
  do {
    tmp[n++] = kDigits[v & 0xF];
    v >>= 4;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

// Buffered fd writer. All methods are async-signal-safe; flush() retries
// short writes and swallows errors (a crash report is best effort).
class FdWriter {
 public:
  explicit FdWriter(int fd) noexcept : fd_(fd) {}
  ~FdWriter() { flush(); }

  void str(const char* s) noexcept {
    for (; *s != '\0'; ++s) put(*s);
  }
  void dec(uint64_t v) noexcept {
    char buf[20];
    raw(buf, u64ToDec(v, buf));
  }
  void hex(uint64_t v) noexcept {
    str("0x");
    char buf[16];
    raw(buf, u64ToHex(v, buf));
  }
  void hexByte(uint8_t v) noexcept {
    static constexpr char kDigits[] = "0123456789abcdef";
    put(kDigits[v >> 4]);
    put(kDigits[v & 0xF]);
  }
  void put(char c) noexcept {
    if (len_ == sizeof buf_) flush();
    buf_[len_++] = c;
  }
  void raw(const char* data, size_t n) noexcept {
    for (size_t i = 0; i < n; ++i) put(data[i]);
  }

  void flush() noexcept {
    size_t off = 0;
    while (off < len_) {
      const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    len_ = 0;
  }

 private:
  int fd_;
  size_t len_ = 0;
  char buf_[256];
};

}  // namespace brew::sigfmt
