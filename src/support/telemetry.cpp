#include "support/telemetry.hpp"

#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#include "support/profiler.hpp"

namespace brew::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Registry storage. Leaked on purpose: the atexit reporters and the
// ExecMemory destructors of static-lifetime benches run during static
// destruction, after any non-leaked registry would already be gone.
// ---------------------------------------------------------------------------

struct Registry {
  Counter counters[static_cast<int>(CounterId::kCount)];
  Gauge gauges[static_cast<int>(GaugeId::kCount)];
  Histogram histograms[static_cast<int>(HistogramId::kCount)];
};

Registry& registry() noexcept {
  static auto* r = new Registry();
  return *r;
}

constexpr const char* kCounterNames[] = {
    "rewrite.attempts",
    "rewrite.failures",
    "trace.instructions",
    "trace.captured",
    "trace.elided",
    "trace.blocks",
    "trace.inlined_calls",
    "trace.kept_calls",
    "trace.resolved_branches",
    "trace.captured_branches",
    "trace.migrations",
    "blocks.started",
    "blocks.chained",
    "blocks.reused",
    "blocks.merged",
    "blocks.side_exits",
    "passes.blocks_merged",
    "passes.peephole_removed",
    "passes.dead_flags_removed",
    "passes.loads_forwarded",
    "passes.zero_add_folds",
    "passes.vectorized_groups",
    "passes.loads_eliminated",
    "emit.instructions",
    "emit.code_bytes",
    "emit.pool_bytes",
    "cache.hits",
    "cache.misses",
    "cache.evictions",
    "cache.insertions",
    "cache.inflight_waits",
    "cache.invalidations",
    "cache.async_installs",
    "cache.fastpath_hits",
    "cache.shard_contention",
    "decode.cache_hits",
    "decode.cache_misses",
    "decode.cache_flushes",
    "guard.variants_built",
    "guard.variant_failures",
    "guard.dispatches_built",
    "dispatch.table_hits",
    "dispatch.misses",
    "dispatch.promotions",
    "dispatch.demotions",
    "dispatch.decay_rounds",
    "dispatch.epoch_bumps",
    "dispatch.stubs_built",
    "dispatch.variant_failures",
    "dispatch.async_respecs",
    "jit.stubs_finalized",
    "jit.stub_bytes",
    "exec.allocations",
    "exec.frees",
    "cache.persist_hits",
    "cache.persist_misses",
    "cache.persist_writes",
    "cache.persist_rejects",
    "cache.persist_shared_maps",
};
static_assert(sizeof kCounterNames / sizeof kCounterNames[0] ==
                  static_cast<size_t>(CounterId::kCount),
              "counter name table out of sync with CounterId");

constexpr const char* kGaugeNames[] = {
    "exec.bytes_live",
    "cache.bytes_live",
};
static_assert(sizeof kGaugeNames / sizeof kGaugeNames[0] ==
                  static_cast<size_t>(GaugeId::kCount),
              "gauge name table out of sync with GaugeId");

constexpr const char* kHistogramNames[] = {
    "phase.decode_ns",
    "phase.emulate_ns",
    "phase.emulate_decode_ns",
    "phase.emulate_exec_ns",
    "phase.emulate_shadow_ns",
    "phase.passes_ns",
    "phase.vectorize_ns",
    "phase.emit_ns",
    "phase.chain_ns",
    "phase.install_ns",
    "phase.rewrite_ns",
    "trace.queue_depth",
    "async.queue_latency_ns",
    "async.install_latency_ns",
    "dispatch.resolve_ns",
};
static_assert(sizeof kHistogramNames / sizeof kHistogramNames[0] ==
                  static_cast<size_t>(HistogramId::kCount),
              "histogram name table out of sync with HistogramId");

// ---------------------------------------------------------------------------
// Span ring buffers: one per thread, registered globally so writeTrace can
// walk them all (including those of exited threads). The per-buffer mutex
// is only ever contended by an exporter; span recording on the owning
// thread takes it uncontended, and only while tracing is enabled.
// ---------------------------------------------------------------------------

struct SpanRecord {
  const char* name = nullptr;
  uint64_t startNs = 0;
  uint64_t endNs = 0;
  char args[160];
};

struct ThreadBuffer {
  static constexpr size_t kCapacity = 8192;
  std::mutex mu;
  uint64_t tid = 0;
  uint64_t next = 0;  // total spans ever written; ring index = next % cap
  std::unique_ptr<SpanRecord[]> spans =
      std::make_unique<SpanRecord[]>(kCapacity);
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

TraceState& traceState() noexcept {
  static auto* s = new TraceState();
  return *s;
}

std::atomic<bool> g_tracing{false};

ThreadBuffer& threadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    b->tid = static_cast<uint64_t>(::syscall(SYS_gettid));
    TraceState& state = traceState();
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

// ---------------------------------------------------------------------------
// Environment wiring: BREW_TRACE_FILE enables tracing and writes the trace
// at exit; BREW_STATS=1 prints the summary at exit.
// ---------------------------------------------------------------------------

const char* g_tracePath = nullptr;
bool g_statsAtExit = false;

void atExitReport() {
  if (g_statsAtExit) writeSummary(stderr);
  if (g_tracePath != nullptr) writeTrace(g_tracePath);
}

struct EnvInit {
  EnvInit() {
    if (const char* path = std::getenv("BREW_TRACE_FILE");
        path != nullptr && path[0] != '\0') {
      g_tracePath = path;
      g_tracing.store(true, std::memory_order_relaxed);
    }
    if (const char* stats = std::getenv("BREW_STATS");
        stats != nullptr && stats[0] == '1')
      g_statsAtExit = true;
    if (g_tracePath != nullptr || g_statsAtExit) std::atexit(&atExitReport);
  }
};
EnvInit g_envInit;

void appendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

// Exporters write to "<path>.tmp" and rename into place, so a crash
// mid-export (reachable from the crash handler and atexit paths) never
// leaves a torn file where a previous good export used to be.
bool renameIntoPlace(std::FILE* f, const std::string& tmpPath,
                     const char* path) {
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok || std::rename(tmpPath.c_str(), path) != 0) {
    std::remove(tmpPath.c_str());
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry accessors
// ---------------------------------------------------------------------------

uint64_t Histogram::quantileFromBuckets(const uint64_t* buckets,
                                        double p) noexcept {
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) total += buckets[i];
  if (total == 0) return 0;
  p = std::min(std::max(p, 0.0), 1.0);
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p * total)));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank)
      return bucketLowerBound(i) + bucketWidth(i) / 2;
  }
  return bucketLowerBound(kBuckets - 1);
}

uint64_t Histogram::quantile(double p) const noexcept {
  uint64_t copy[kBuckets];
  for (int i = 0; i < kBuckets; ++i) copy[i] = bucket(i);
  return quantileFromBuckets(copy, p);
}

Counter& counter(CounterId id) noexcept {
  return registry().counters[static_cast<int>(id)];
}
Gauge& gauge(GaugeId id) noexcept {
  return registry().gauges[static_cast<int>(id)];
}
Histogram& histogram(HistogramId id) noexcept {
  return registry().histograms[static_cast<int>(id)];
}

const char* counterName(CounterId id) noexcept {
  return kCounterNames[static_cast<int>(id)];
}
const char* gaugeName(GaugeId id) noexcept {
  return kGaugeNames[static_cast<int>(id)];
}
const char* histogramName(HistogramId id) noexcept {
  return kHistogramNames[static_cast<int>(id)];
}

Snapshot snapshot() {
  Snapshot out;
  Registry& r = registry();
  out.counters.reserve(static_cast<size_t>(CounterId::kCount));
  for (int i = 0; i < static_cast<int>(CounterId::kCount); ++i)
    out.counters.push_back({kCounterNames[i], r.counters[i].value()});
  out.gauges.reserve(static_cast<size_t>(GaugeId::kCount));
  for (int i = 0; i < static_cast<int>(GaugeId::kCount); ++i)
    out.gauges.push_back({kGaugeNames[i], r.gauges[i].value()});
  out.histograms.reserve(static_cast<size_t>(HistogramId::kCount));
  for (int i = 0; i < static_cast<int>(HistogramId::kCount); ++i) {
    Snapshot::HistogramValue h;
    h.name = kHistogramNames[i];
    h.count = r.histograms[i].count();
    h.sum = r.histograms[i].sum();
    h.max = r.histograms[i].max();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      h.buckets[b] = r.histograms[i].bucket(b);
    out.histograms.push_back(h);
  }
  return out;
}

void resetAll() noexcept {
  Registry& r = registry();
  for (auto& c : r.counters) c.reset();
  for (auto& g : r.gauges) g.reset();
  for (auto& h : r.histograms) h.reset();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

bool tracingEnabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void setTracing(bool enabled) noexcept {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

uint64_t nowNs() noexcept {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

#if defined(__x86_64__)
namespace {
// TSC ticks per nanosecond, measured once against CLOCK_MONOTONIC over a
// ~20µs window (~0.1% accuracy — plenty for phase attribution). Invariant
// TSC is assumed, as on every x86-64 part of the last decade; if the rate
// were to drift the only casualty is phase-time attribution, never
// correctness.
double measureTicksPerNs() noexcept {
  const uint64_t t0 = fastTicks();
  const uint64_t n0 = nowNs();
  uint64_t n1;
  do {
    n1 = nowNs();
  } while (n1 - n0 < 20000);
  const uint64_t t1 = fastTicks();
  const double rate =
      static_cast<double>(t1 - t0) / static_cast<double>(n1 - n0);
  return rate > 0.0 ? rate : 1.0;
}
}  // namespace

uint64_t ticksToNs(uint64_t ticks) noexcept {
  static const double rate = measureTicksPerNs();
  return static_cast<uint64_t>(static_cast<double>(ticks) / rate);
}
#else
uint64_t ticksToNs(uint64_t ticks) noexcept { return ticks; }
#endif

void recordSpan(const char* name, uint64_t startNs, uint64_t endNs,
                const char* argsJson) {
  if (!tracingEnabled() || name == nullptr) return;
  ThreadBuffer& buffer = threadBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  SpanRecord& record = buffer.spans[buffer.next % ThreadBuffer::kCapacity];
  ++buffer.next;
  record.name = name;
  record.startNs = startNs;
  record.endNs = endNs >= startNs ? endNs : startNs;
  if (argsJson != nullptr) {
    std::strncpy(record.args, argsJson, sizeof record.args - 1);
    record.args[sizeof record.args - 1] = '\0';
  } else {
    record.args[0] = '\0';
  }
}

SpanScope::SpanScope(const char* name) noexcept {
  if (!tracingEnabled()) return;
  active_ = true;
  name_ = name;
  args_[0] = '\0';
  start_ = nowNs();
}

void SpanScope::arg(const char* key, const char* fmt, ...) {
  if (!active_) return;
  const int room = static_cast<int>(sizeof args_) - argsLen_;
  if (room <= 8) return;
  int n = std::snprintf(args_ + argsLen_, static_cast<size_t>(room),
                        "%s\"%s\":\"", argsLen_ > 0 ? "," : "", key);
  if (n < 0 || n >= room) return;
  argsLen_ += n;
  va_list ap;
  va_start(ap, fmt);
  n = std::vsnprintf(args_ + argsLen_,
                     static_cast<size_t>(sizeof args_) - argsLen_ - 1, fmt,
                     ap);
  va_end(ap);
  if (n < 0) {
    args_[argsLen_] = '\0';
    return;
  }
  argsLen_ = std::min(argsLen_ + n,
                      static_cast<int>(sizeof args_) - 2);
  args_[argsLen_++] = '"';
  args_[argsLen_] = '\0';
}

SpanScope::~SpanScope() {
  if (!active_) return;
  recordSpan(name_, start_, nowNs(), argsLen_ > 0 ? args_ : nullptr);
}

bool writeTrace(const char* path) {
  if (path == nullptr) return false;
  const std::string tmpPath = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmpPath.c_str(), "w");
  if (f == nullptr) return false;

  const int pid = static_cast<int>(::getpid());
  std::fputs("{\"traceEvents\":[", f);
  bool first = true;

  // Hold the registry lock across the walk so buffers cannot be added
  // mid-export; each buffer's own lock serializes against its writer.
  TraceState& state = traceState();
  std::lock_guard<std::mutex> registryLock(state.mu);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    const uint64_t total = buffer->next;
    const uint64_t begin =
        total > ThreadBuffer::kCapacity ? total - ThreadBuffer::kCapacity : 0;
    for (uint64_t i = begin; i < total; ++i) {
      const SpanRecord& span = buffer->spans[i % ThreadBuffer::kCapacity];
      std::string name;
      appendJsonEscaped(name, span.name);
      if (!first) std::fputc(',', f);
      first = false;
      // Complete ("X") events; ts/dur are microseconds as doubles, so
      // nanosecond precision survives as fractions.
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                   "\"dur\":%.3f,\"pid\":%d,\"tid\":%llu",
                   name.c_str(), static_cast<double>(span.startNs) / 1e3,
                   static_cast<double>(span.endNs - span.startNs) / 1e3, pid,
                   static_cast<unsigned long long>(buffer->tid));
      if (span.args[0] != '\0')
        std::fprintf(f, ",\"args\":{%s}", span.args);
      std::fputs("}", f);
    }
  }
  std::fputs("]}\n", f);
  return renameIntoPlace(f, tmpPath, path);
}

void clearTrace() noexcept {
  TraceState& state = traceState();
  std::lock_guard<std::mutex> registryLock(state.mu);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->next = 0;
  }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

bool writeJson(const char* path) {
  if (path == nullptr) return false;
  const std::string tmpPath = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmpPath.c_str(), "w");
  if (f == nullptr) return false;
  const Snapshot snap = snapshot();
  std::fputs("{\n  \"counters\": {", f);
  for (size_t i = 0; i < snap.counters.size(); ++i)
    std::fprintf(f, "%s\n    \"%s\": %llu", i > 0 ? "," : "",
                 snap.counters[i].name,
                 static_cast<unsigned long long>(snap.counters[i].value));
  std::fputs("\n  },\n  \"gauges\": {", f);
  for (size_t i = 0; i < snap.gauges.size(); ++i)
    std::fprintf(f, "%s\n    \"%s\": %lld", i > 0 ? "," : "",
                 snap.gauges[i].name,
                 static_cast<long long>(snap.gauges[i].value));
  std::fputs("\n  },\n  \"histograms\": {", f);
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    std::fprintf(f,
                 "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
                 "\"max\": %llu, \"p50\": %llu, \"p99\": %llu, "
                 "\"p999\": %llu, \"buckets\": [",
                 i > 0 ? "," : "", h.name,
                 static_cast<unsigned long long>(h.count),
                 static_cast<unsigned long long>(h.sum),
                 static_cast<unsigned long long>(h.max),
                 static_cast<unsigned long long>(
                     Histogram::quantileFromBuckets(h.buckets, 0.50)),
                 static_cast<unsigned long long>(
                     Histogram::quantileFromBuckets(h.buckets, 0.99)),
                 static_cast<unsigned long long>(
                     Histogram::quantileFromBuckets(h.buckets, 0.999)));
    // Trailing zero buckets are truncated to keep the file small.
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h.buckets[last] == 0) --last;
    for (int b = 0; b <= last; ++b)
      std::fprintf(f, "%s%llu", b > 0 ? "," : "",
                   static_cast<unsigned long long>(h.buckets[b]));
    std::fputs("]}", f);
  }
  std::fputs("\n  }\n}\n", f);
  return renameIntoPlace(f, tmpPath, path);
}

void writeSummary(std::FILE* out) {
  const Snapshot snap = snapshot();
  std::fprintf(out, "=== brew telemetry (pid %d) ===\n",
               static_cast<int>(::getpid()));
  for (const auto& c : snap.counters)
    if (c.value != 0)
      std::fprintf(out, "  %-28s %12llu\n", c.name,
                   static_cast<unsigned long long>(c.value));
  for (const auto& g : snap.gauges)
    if (g.value != 0)
      std::fprintf(out, "  %-28s %12lld\n", g.name,
                   static_cast<long long>(g.value));
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    std::fprintf(
        out,
        "  %-28s count %-8llu avg %-8llu p50 %-8llu p99 %-8llu "
        "p999 %-8llu max %llu\n",
        h.name, static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum / h.count),
        static_cast<unsigned long long>(
            Histogram::quantileFromBuckets(h.buckets, 0.50)),
        static_cast<unsigned long long>(
            Histogram::quantileFromBuckets(h.buckets, 0.99)),
        static_cast<unsigned long long>(
            Histogram::quantileFromBuckets(h.buckets, 0.999)),
        static_cast<unsigned long long>(h.max));
  }
  // The sampling profiler's per-specialization attribution rides along in
  // the same BREW_STATS report (no-op when it never ran).
  prof::writeProfileSummary(out);
}

}  // namespace brew::telemetry
