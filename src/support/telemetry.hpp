// Process-wide rewrite-pipeline telemetry (paper §VIII names debugging and
// tooling for runtime-generated code an open problem; this is the
// measurement half of the answer).
//
// Three parts:
//
//  - A metrics REGISTRY of fixed, named instruments: monotonic counters,
//    up/down gauges and two-level HDR-style histograms (log2 major /
//    linear minor buckets, so p50/p99/p999 resolve to ~6%). All slots are
//    relaxed
//    atomics — incrementing from the rewrite hot path is one uncontended
//    atomic add, never a lock. Instruments are enumerated at compile time
//    so lookup is an array index.
//
//  - A phase timeline TRACER: scoped spans recorded into per-thread ring
//    buffers and exported as Chrome trace-event JSON ("Perfetto" /
//    chrome://tracing loadable). Off by default; enabled by
//    BREW_TRACE_FILE=<path> (written at exit) or setTracing(true) +
//    writeTrace(). When disabled a SpanScope costs one relaxed load.
//
//  - EXPORTERS: snapshot() for programmatic access (the brew_telemetry_*
//    C API wraps it), writeJson() for machine-readable metrics,
//    writeSummary() for the BREW_STATS=1 atexit human-readable report.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace brew::telemetry {

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

enum class CounterId : int {
  RewriteAttempts,        // compileSpecialization entered
  RewriteFailures,        // trace or emit returned an error
  TraceInstructions,      // instructions emulated
  TraceCaptured,          // instructions placed in output blocks
  TraceElided,            // folded away by partial evaluation
  TraceBlocks,            // blocks captured
  TraceInlinedCalls,
  TraceKeptCalls,
  TraceResolvedBranches,
  TraceCapturedBranches,
  TraceMigrations,        // variant-threshold state migrations
  BlocksStarted,          // logical basic blocks opened by the tracer
  BlocksChained,          // forward edges continued inline (no fork)
  BlocksReused,           // edges resolved to an existing block variant
  BlocksMerged,           // reconvergence meets into a pending variant
  BlocksSideExits,        // fork-depth cap hit: side-exit stub emitted
  PassBlocksMerged,
  PassPeepholeRemoved,
  PassDeadFlagsRemoved,
  PassLoadsForwarded,
  PassZeroAddFolds,
  PassVectorizedGroups,   // scalar groups re-emitted as one packed SSE op
  PassLoadsEliminated,    // cross-iteration re-loads replaced by reg reuse
  EmitInstructions,
  EmitCodeBytes,
  EmitPoolBytes,
  CacheHits,
  CacheMisses,
  CacheEvictions,
  CacheInsertions,
  CacheInFlightWaits,
  CacheInvalidations,
  CacheAsyncInstalls,
  CacheFastpathHits,      // hits served by the lock-free seqlock hit table
  CacheShardContention,   // shard mutex acquisitions that had to wait
  DecodeCacheHits,        // decoded-instruction cache (isa/decode_cache)
  DecodeCacheMisses,
  DecodeCacheFlushes,     // thread-local flushes after a code-mutation epoch
  GuardVariantsBuilt,
  GuardVariantFailures,   // per-value rewrite failed; value takes original
  GuardDispatchesBuilt,
  DispatchTableHits,      // variant-table hits on the IC-miss slow path
  DispatchMisses,         // resolver calls with no live variant for the key
  DispatchPromotions,     // hot value specialized into a live variant
  DispatchDemotions,      // cold variant retired by decay/hysteresis
  DispatchDecayRounds,    // periodic halvings of the variant/miss scores
  DispatchEpochBumps,     // predicate-epoch changes retiring all variants
  DispatchStubsBuilt,     // inline-cache dispatch stubs emitted
  DispatchVariantFailures, // candidate rewrite failed; key is blacklisted
  DispatchAsyncRespecs,   // respecializations submitted to the worker pool
  JitStubsFinalized,      // Assembler::finalizeExecutable successes
  JitStubBytes,
  ExecAllocations,
  ExecFrees,
  PersistHits,            // on-disk cache entries loaded (trace skipped)
  PersistMisses,          // probes that found no usable entry
  PersistWrites,          // entries written (tmp + rename) to the store
  PersistRejects,         // entries rejected: corrupt/stale/unresolvable
  PersistSharedMaps,      // loads served as shared sealed-memfd RX pages
  kCount
};

enum class GaugeId : int {
  ExecBytesLive,          // mapped generated-code bytes currently live
  CacheBytesLive,         // bytes currently held by code caches
  kCount
};

enum class HistogramId : int {
  PhaseDecodeNs,          // per rewrite: time inside the instruction decoder
  PhaseEmulateNs,         // per rewrite: trace/emulate time minus decode
  PhaseEmulateDecodeNs,   // emulate sub-span: instruction decode
  PhaseEmulateExecNs,     // emulate sub-span: abstract execution proper
  PhaseEmulateShadowNs,   // emulate sub-span: state snapshots + variant keys
  PhasePassesNs,
  PhaseVectorizeNs,       // SLP + cross-iteration passes inside runPasses
  PhaseEmitNs,
  PhaseChainNs,           // emit sub-span: block layout + jump relocation
  PhaseInstallNs,         // registration + block adoption / publication
  RewriteNs,              // whole compileSpecialization
  TraceQueueDepth,        // branch-fork pending queue depth, sampled per block
  AsyncQueueLatencyNs,    // enqueue -> worker pickup
  AsyncInstallLatencyNs,  // enqueue -> specialized code published
  DispatchResolveNs,      // inline-cache miss resolver, per call
  kCount
};

class Counter {
 public:
  void add(uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void add(int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(int64_t n) noexcept { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Two-level HDR-style histogram: a log2 MAJOR level (one per bit width,
// 64 of them) subdivided into 2^kMinorBits linear MINOR buckets, plus one
// bucket for zeros. Values land in a bucket whose width is at most
// 2^(major-1)/16 — a bounded ~6% relative error at any magnitude, which is
// what makes quantile(p) meaningful for p99/p999 tail reporting (the old
// single-level log2 scheme could only bound a percentile to within 2x).
// record() is still 3 relaxed atomic adds plus a CAS loop only when a new
// max is observed.
class Histogram {
 public:
  static constexpr int kMinorBits = 4;           // 16 linear sub-buckets
  static constexpr int kMinors = 1 << kMinorBits;
  static constexpr int kMajors = 64;             // one per bit width
  static constexpr int kBuckets = kMajors * kMinors + 1;  // +1 zero bucket

  static int bucketFor(uint64_t v) noexcept {
    if (v == 0) return 0;
    const int major = 64 - __builtin_clzll(v);   // bit_width, 1..64
    const int shift = major - 1 - kMinorBits;
    const int minor =
        shift > 0 ? static_cast<int>((v >> shift) & (kMinors - 1))
                  : static_cast<int>(v - (uint64_t{1} << (major - 1)));
    return 1 + (major - 1) * kMinors + minor;
  }

  // Smallest value that maps to bucket i (0 for the zero bucket).
  static uint64_t bucketLowerBound(int i) noexcept {
    if (i <= 0) return 0;
    const int major = (i - 1) / kMinors + 1;
    const int minor = (i - 1) % kMinors;
    const uint64_t base = uint64_t{1} << (major - 1);
    const int shift = major - 1 - kMinorBits;
    const auto m = static_cast<uint64_t>(minor);
    return base + (shift > 0 ? (m << shift) : m);
  }

  // Width of bucket i in value space (1 for the zero bucket and the
  // single-value low buckets).
  static uint64_t bucketWidth(int i) noexcept {
    if (i <= 0) return 1;
    const int major = (i - 1) / kMinors + 1;
    const int shift = major - 1 - kMinorBits;
    return shift > 0 ? (uint64_t{1} << shift) : 1;
  }

  // Quantile estimate over a raw bucket array (shared with Snapshot
  // consumers): walks to the bucket holding rank ceil(p*count) and returns
  // its midpoint representative. Exact for single-value buckets, within
  // the ~6% bucket width otherwise. Returns 0 for an empty histogram.
  static uint64_t quantileFromBuckets(const uint64_t* buckets,
                                      double p) noexcept;

  void record(uint64_t v) noexcept {
    buckets_[bucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Quantile estimate from the live buckets; p in [0,1].
  uint64_t quantile(double p) const noexcept;
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Registry accessors. The instrument tables are allocated once and leaked
// so the atexit reporters can run during static destruction.
Counter& counter(CounterId id) noexcept;
Gauge& gauge(GaugeId id) noexcept;
Histogram& histogram(HistogramId id) noexcept;

const char* counterName(CounterId id) noexcept;
const char* gaugeName(GaugeId id) noexcept;
const char* histogramName(HistogramId id) noexcept;

// Point-in-time copy of every instrument.
struct Snapshot {
  struct CounterValue {
    const char* name;
    uint64_t value;
  };
  struct GaugeValue {
    const char* name;
    int64_t value;
  };
  struct HistogramValue {
    const char* name;
    uint64_t count;
    uint64_t sum;
    uint64_t max;
    uint64_t buckets[Histogram::kBuckets];
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};
Snapshot snapshot();

// Zeroes every counter/gauge/histogram (tests, phase boundaries).
void resetAll() noexcept;

// ---------------------------------------------------------------------------
// Phase timeline tracing
// ---------------------------------------------------------------------------

bool tracingEnabled() noexcept;
void setTracing(bool enabled) noexcept;

// Monotonic nanoseconds (CLOCK_MONOTONIC; matches the jitdump clock so a
// perf timeline and a BREW trace line up).
uint64_t nowNs() noexcept;

// Cheap monotonic tick source for high-frequency interval accumulation on
// hot paths (the tracer's shadow-time bookkeeping takes dozens of readings
// per rewrite; clock_gettime there is measurable). x86-64 reads the
// invariant TSC (~5ns vs ~20ns); elsewhere it falls back to nowNs() and
// ticksToNs is the identity. Tick deltas are only meaningful through
// ticksToNs, which calibrates the tick rate once per process.
#if defined(__x86_64__)
inline uint64_t fastTicks() noexcept { return __builtin_ia32_rdtsc(); }
#else
inline uint64_t fastTicks() noexcept { return nowNs(); }
#endif
uint64_t ticksToNs(uint64_t ticks) noexcept;

// Records a completed span with explicit timestamps into the calling
// thread's ring buffer. `argsJson`, when given, is a pre-rendered JSON
// object-body fragment (e.g. "\"fn\":\"0x1234\"") attached as the span's
// args. No-op while tracing is disabled.
void recordSpan(const char* name, uint64_t startNs, uint64_t endNs,
                const char* argsJson = nullptr);

// RAII span: captures start at construction, records at destruction.
// `name` must outlive the trace (string literals).
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept;
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const noexcept { return active_; }
  // Appends one "key":"<formatted>" pair to the span's args.
  void arg(const char* key, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

 private:
  const char* name_ = nullptr;
  uint64_t start_ = 0;
  bool active_ = false;
  int argsLen_ = 0;
  char args_[160];
};

// Writes every recorded span as Chrome trace-event JSON ({"traceEvents":
// [...]}). Returns false if the file cannot be written. Spans survive
// thread exit; the buffer keeps the most recent ~8k spans per thread.
bool writeTrace(const char* path);

// Drops all recorded spans (tests).
void clearTrace() noexcept;

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

// Machine-readable metrics snapshot (counters, gauges, histograms with
// buckets) as a JSON object. Returns false on I/O failure.
bool writeJson(const char* path);

// Human-readable metrics dump (the BREW_STATS=1 atexit report).
void writeSummary(std::FILE* out);

}  // namespace brew::telemetry
