// Profile-guided automatic specialization (§III-D): sampling through the
// proxy, hot-value selection, transparent upgrade to guarded dispatch.
#include <gtest/gtest.h>

#include "core/autospec.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Mnemonic;
using isa::Reg;

// f(mode, x) = mode * 1000 + x, built deterministically.
ExecMemory buildKernel() {
  jit::Assembler as;
  as.emit(isa::makeInstr(Mnemonic::Imul, 8, isa::Operand::makeReg(Reg::rax),
                         isa::Operand::makeReg(Reg::rdi),
                         isa::Operand::makeImm(1000)));
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  return std::move(*mem);
}

using kernel_t = int64_t (*)(int64_t, int64_t);

TEST(AutoSpec, SamplesThenSpecializes) {
  ExecMemory kernel = buildKernel();
  AutoSpecializer::Options options;
  options.sampleCalls = 50;
  options.maxVariants = 2;
  options.minShare = 0.2;
  AutoSpecializer spec(kernel.data(), 0,
                       {ArgValue::fromInt(0), ArgValue::fromInt(0)},
                       Config{}, options);
  auto fn = spec.as<kernel_t>();

  // Sampling phase: behavior identical to the original.
  for (int i = 0; i < 49; ++i) {
    const int64_t mode = (i % 10 < 7) ? 3 : 8;  // 70% mode 3, 30% mode 8
    ASSERT_EQ(fn(mode, i), mode * 1000 + i);
  }
  EXPECT_FALSE(spec.specialized());
  EXPECT_EQ(spec.observedCalls(), 49u);

  // 50th call trips the decision.
  ASSERT_EQ(fn(3, 7), 3007);
  EXPECT_TRUE(spec.specialized());
  EXPECT_EQ(spec.variantCount(), 2u);

  // Dispatching phase: hot values hit specialized variants, everything
  // still computes correctly (including cold values via the original).
  EXPECT_EQ(fn(3, 11), 3011);
  EXPECT_EQ(fn(8, 11), 8011);
  EXPECT_EQ(fn(5, 11), 5011);
  EXPECT_EQ(spec.histogram().at(3), 36u);  // 35 in the loop + the tripping call
}

TEST(AutoSpec, MinShareFiltersColdValues) {
  ExecMemory kernel = buildKernel();
  AutoSpecializer::Options options;
  options.sampleCalls = 100;
  options.maxVariants = 8;
  options.minShare = 0.5;  // only a strict majority value qualifies
  AutoSpecializer spec(kernel.data(), 0,
                       {ArgValue::fromInt(0), ArgValue::fromInt(0)},
                       Config{}, options);
  auto fn = spec.as<kernel_t>();
  for (int i = 0; i < 100; ++i) fn(i % 4, i);  // 25% each: nothing hot
  EXPECT_TRUE(spec.specialized());
  EXPECT_EQ(spec.variantCount(), 0u);
  // Entry now forwards straight to the original.
  EXPECT_EQ(fn(2, 5), 2005);
}

TEST(AutoSpec, ManualFinalize) {
  ExecMemory kernel = buildKernel();
  AutoSpecializer::Options options;
  options.sampleCalls = 1000000;  // would never trip on its own
  options.minShare = 0.5;
  AutoSpecializer spec(kernel.data(), 0,
                       {ArgValue::fromInt(0), ArgValue::fromInt(0)},
                       Config{}, options);
  auto fn = spec.as<kernel_t>();
  for (int i = 0; i < 10; ++i) fn(42, i);
  spec.finalize();
  EXPECT_TRUE(spec.specialized());
  EXPECT_EQ(spec.variantCount(), 1u);
  EXPECT_EQ(fn(42, 1), 42001);
  EXPECT_EQ(fn(7, 1), 7001);
  // Sampling stopped: histogram frozen.
  const auto calls = spec.observedCalls();
  fn(42, 2);
  EXPECT_EQ(spec.observedCalls(), calls);
}

TEST(AutoSpec, FloatArgumentsSurviveSampling) {
  // g(mode, x) = x * 2.0 + mode — double argument must survive the
  // sampling proxy's register juggling.
  jit::Assembler as;
  as.emit(isa::makeInstr(Mnemonic::Addsd, 8, isa::Operand::makeReg(Reg::xmm0),
                         isa::Operand::makeReg(Reg::xmm0)));
  as.emit(isa::makeInstr(Mnemonic::Cvtsi2sd, 8,
                         isa::Operand::makeReg(Reg::xmm1),
                         isa::Operand::makeReg(Reg::rdi)));
  as.emit(isa::makeInstr(Mnemonic::Addsd, 8, isa::Operand::makeReg(Reg::xmm0),
                         isa::Operand::makeReg(Reg::xmm1)));
  as.ret();
  {
    // srcWidth for cvtsi2sd defaults to 0 in makeInstr; patch it.
  }
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  using g_t = double (*)(int64_t, double);
  AutoSpecializer::Options options;
  options.sampleCalls = 8;
  AutoSpecializer spec(mem->data(), 0,
                       {ArgValue::fromInt(0), ArgValue::fromDouble(0.0)},
                       Config{}, options);
  auto fn = spec.as<g_t>();
  for (int i = 0; i < 20; ++i)
    ASSERT_DOUBLE_EQ(fn(5, 1.25), 1.25 * 2 + 5) << "call " << i;
  EXPECT_TRUE(spec.specialized());
}

}  // namespace
}  // namespace brew
