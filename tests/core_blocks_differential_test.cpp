// Block-chained translation tier differential tests (docs/BLOCKS.md):
// randomized branchy functions must compute identical results through the
// chained tier and through the generic fork-queue path (chaining and
// reconvergence off), the fork-bomb shape (a run of sequential unknown
// branches) must produce O(blocks) variants rather than O(paths), and the
// fork-depth cap must degrade into correct side-exit stubs instead of
// wrong code.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/rewriter.hpp"
#include "isa/printer.hpp"
#include "jit/assembler.hpp"
#include "support/prng.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::Instruction;
using isa::makeInstr;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

using fn_t = uint64_t (*)(uint64_t, uint64_t);

// A function of `diamonds` sequential unknown-branch diamonds: every arm
// mutates the working registers, so each join sees two distinct states and
// the path count doubles per diamond. Both arguments stay unknown, which
// keeps every compare — and therefore every branch — unresolvable.
ExecMemory buildBranchyFunction(Prng& rng, int diamonds) {
  jit::Assembler as;
  const Reg pool[] = {Reg::rax, Reg::rcx, Reg::rdx, Reg::r8, Reg::r9,
                      Reg::r10};

  as.movRegReg(Reg::rax, Reg::rdi);
  as.movRegReg(Reg::rcx, Reg::rsi);
  as.movRegReg(Reg::rdx, Reg::rdi);
  as.movRegReg(Reg::r8, Reg::rsi);
  as.movRegReg(Reg::r9, Reg::rdi);
  as.movRegReg(Reg::r10, Reg::rsi);

  for (int d = 0; d < diamonds; ++d) {
    const Reg a = pool[rng.below(std::size(pool))];
    const Reg b = pool[rng.below(std::size(pool))];
    as.aluRegReg(Mnemonic::Cmp, a, b, 8);
    jit::Label skip = as.newLabel();
    as.jcc(static_cast<Cond>(rng.below(16)), skip);
    const int armLen = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < armLen; ++i) {
      const Reg dst = pool[rng.below(std::size(pool))];
      const Reg src = pool[rng.below(std::size(pool))];
      switch (rng.below(4)) {
        case 0: as.aluRegReg(Mnemonic::Add, dst, src, 8); break;
        case 1: as.aluRegReg(Mnemonic::Sub, dst, src, 8); break;
        case 2: as.aluRegReg(Mnemonic::Xor, dst, src, 8); break;
        default:
          as.aluRegImm(Mnemonic::Add, dst,
                       static_cast<int64_t>(rng.next() & 0xFFFF), 8);
          break;
      }
    }
    as.bind(skip);
    // Shared join body so the merged block has something to get wrong.
    as.aluRegReg(Mnemonic::Add, pool[rng.below(std::size(pool))],
                 pool[rng.below(std::size(pool))], 8);
  }
  for (Reg r : {Reg::rcx, Reg::rdx, Reg::r8, Reg::r9, Reg::r10})
    as.aluRegReg(Mnemonic::Add, Reg::rax, r);
  as.ret();

  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << mem.error().message();
  return std::move(*mem);
}

Config chainedConfig() {
  Config config;
  config.setReturnKind(ReturnKind::Int);
  return config;  // chaining / reconvergence / side exits default on
}

Config genericConfig() {
  Config config;
  config.setReturnKind(ReturnKind::Int);
  config.setChainBlocks(false);
  config.setReconvergeJoins(false);
  config.setSideExitFallback(false);
  return config;
}

// The chained tier is an optimization of how blocks are discovered and
// stitched, not of what they compute: for any input, the chained rewrite,
// the generic-path rewrite and the original must agree bit for bit.
class BlocksDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlocksDifferential, ChainedMatchesGenericAndOriginal) {
  Prng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int diamonds = 1 + static_cast<int>(rng.below(6));
    ExecMemory code = buildBranchyFunction(rng, diamonds);
    auto original = code.entry<fn_t>();

    Rewriter chained{chainedConfig()};
    auto viaChained = chained.rewrite(code.data(), uint64_t{1}, uint64_t{2});
    ASSERT_TRUE(viaChained.ok())
        << "seed " << GetParam() << " trial " << trial << ": "
        << viaChained.error().message();

    Rewriter generic{genericConfig()};
    auto viaGeneric = generic.rewrite(code.data(), uint64_t{1}, uint64_t{2});
    ASSERT_TRUE(viaGeneric.ok())
        << "seed " << GetParam() << " trial " << trial << ": "
        << viaGeneric.error().message();

    for (int call = 0; call < 16; ++call) {
      const uint64_t a = rng.next();
      const uint64_t b = rng.next();
      const uint64_t want = original(a, b);
      ASSERT_EQ(viaChained->as<fn_t>()(a, b), want)
          << "chained tier diverged: seed " << GetParam() << " trial "
          << trial << " a=" << a << " b=" << b << "\noriginal:\n"
          << isa::disassemble({code.data(), code.size()},
                              reinterpret_cast<uint64_t>(code.data()))
          << "\nrewritten:\n"
          << viaChained->disassembly();
      ASSERT_EQ(viaGeneric->as<fn_t>()(a, b), want)
          << "generic path diverged: seed " << GetParam() << " trial "
          << trial << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlocksDifferential,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

// Resolved forward edges (unconditional jumps, and conditional branches
// whose predicate folds) must continue inline in the current output block
// — the chained tier's terminator patching — instead of round-tripping
// the fork queue. A run of forward jmps is the minimal such shape.
TEST(BlocksChaining, ResolvedForwardJumpsChainInline) {
  jit::Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  constexpr int kHops = 6;
  for (int i = 0; i < kHops; ++i) {
    jit::Label next = as.newLabel();
    as.aluRegImm(Mnemonic::Add, Reg::rax, i + 1, 8);
    as.jmp(next);
    // Unreachable filler the chained trace must skip over.
    as.aluRegImm(Mnemonic::Add, Reg::rax, 1000, 8);
    as.bind(next);
  }
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok()) << mem.error().message();
  auto original = mem->entry<fn_t>();

  Rewriter rewriter{chainedConfig()};
  auto rewritten = rewriter.rewrite(mem->data(), uint64_t{1}, uint64_t{2});
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();

  const TraceStats& ts = rewritten->traceStats();
  EXPECT_GE(ts.chainedBlocks, static_cast<size_t>(kHops))
      << "resolved forward jumps did not chain inline";
  // Chaining collapses the whole run into one output block.
  EXPECT_EQ(ts.blocks, 1u) << rewritten->disassembly();
  EXPECT_EQ(rewritten->as<fn_t>()(10, 3), original(10, 3));
}

// Fork bomb: 10 sequential unknown diamonds span 2^10 = 1024 paths. The
// reconvergence predictor must keep the traced block count linear in the
// branch count — a path-enumerating regression blows well past the bound
// (and the variant threshold) immediately.
TEST(BlocksForkBomb, VariantCountStaysLinearInBranches) {
  constexpr int kDiamonds = 10;
  Prng rng(424242);
  ExecMemory code = buildBranchyFunction(rng, kDiamonds);
  auto original = code.entry<fn_t>();

  Rewriter rewriter{chainedConfig()};
  auto rewritten = rewriter.rewrite(code.data(), uint64_t{1}, uint64_t{2});
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();

  const TraceStats& ts = rewritten->traceStats();
  // Entry + per diamond at most an arm block, a join block and one extra
  // variant of either: linear, with headroom for layout details — versus
  // ~2^10 blocks if joins were traced per path.
  EXPECT_LE(ts.blocks, 4u * kDiamonds + 8u) << "path explosion";
  EXPECT_GT(ts.mergedBlocks, 0u) << "reconvergence never merged";
  EXPECT_GE(ts.capturedBranches, static_cast<size_t>(kDiamonds));

  Prng inputs(777);
  for (int call = 0; call < 32; ++call) {
    const uint64_t a = inputs.next();
    const uint64_t b = inputs.next();
    ASSERT_EQ(rewritten->as<fn_t>()(a, b), original(a, b))
        << "a=" << a << " b=" << b;
  }
}

// Fork-depth cap: with a tiny maxForkDepth the tracer must stop forking
// and emit side-exit stubs back into the original code — and the result
// must still be correct on every path, including the side-exited ones.
TEST(BlocksSideExit, DepthCapEmitsCorrectStubs) {
  constexpr int kDiamonds = 8;
  Prng rng(31337);
  ExecMemory code = buildBranchyFunction(rng, kDiamonds);
  auto original = code.entry<fn_t>();

  Config config = chainedConfig();
  config.limits().maxForkDepth = 2;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(code.data(), uint64_t{1}, uint64_t{2});
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();

  EXPECT_GT(rewritten->traceStats().sideExits, 0u)
      << "fork-depth cap never produced a side exit";

  Prng inputs(888);
  for (int call = 0; call < 32; ++call) {
    const uint64_t a = inputs.next();
    const uint64_t b = inputs.next();
    ASSERT_EQ(rewritten->as<fn_t>()(a, b), original(a, b))
        << "a=" << a << " b=" << b;
  }
}

// TSan entry point (scripts/check_telemetry.sh): independent rewriters on
// independent subjects still share the process-wide decode cache, code
// region index and telemetry registry; racing chained-tier traces across
// threads must be clean.
TEST(ConcurrentBlocksDifferential, RacingChainedTracesStayCorrect) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      Prng rng(9000 + static_cast<uint64_t>(t));
      for (int trial = 0; trial < 8; ++trial) {
        const int diamonds = 2 + static_cast<int>(rng.below(5));
        ExecMemory code = buildBranchyFunction(rng, diamonds);
        auto original = code.entry<fn_t>();
        Rewriter rewriter{chainedConfig()};
        auto rewritten =
            rewriter.rewrite(code.data(), uint64_t{1}, uint64_t{2});
        ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
        for (int call = 0; call < 8; ++call) {
          const uint64_t a = rng.next();
          const uint64_t b = rng.next();
          ASSERT_EQ(rewritten->as<fn_t>()(a, b), original(a, b));
        }
      }
    });
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace brew
