// Sharded-cache concurrency battery: multi-thread hammer over rewrite /
// hit / release / invalidate across shard boundaries, plus deterministic
// checks of the lock-free fast path and the single-shard control mode.
// Tagged with the `concurrency` ctest label and run under ThreadSanitizer
// by scripts/check_telemetry.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "core/code_cache.hpp"
#include "core/spec_manager.hpp"
#include "jit/assembler.hpp"
#include "support/epoch.hpp"

namespace brew {
namespace {

typedef int64_t (*const_t)(void);

// "mov rax, imm64; ret" — a distinct traceable subject per value, JIT-built
// so the test controls its lifetime (and can invalidate it by address).
ExecMemory buildConstFn(int64_t value) {
  jit::Assembler as;
  as.movRegImm(isa::Reg::rax, value);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  return std::move(*mem);
}

Config intConfig() {
  Config config;
  config.setReturnKind(ReturnKind::Int);
  return config;
}

TEST(CacheShardTest, FastpathServesRepeatHits) {
  SpecManager manager{SpecManager::Options{.workers = 1, .cacheShards = 16}};
  ExecMemory fn = buildConstFn(1234);
  const std::vector<ArgValue> none;

  auto first = manager.rewrite(intConfig(), PassOptions{}, fn.data(), none);
  ASSERT_TRUE(first.ok()) << first.error().message();
  auto second = manager.rewrite(intConfig(), PassOptions{}, fn.data(), none);
  ASSERT_TRUE(second.ok()) << second.error().message();

  EXPECT_EQ(first->entry(), second->entry());
  EXPECT_EQ(reinterpret_cast<const_t>(second->entry())(), 1234);
  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.shards, 16u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  // The repeat hit came from the seqlock table, not the shard mutex.
  EXPECT_EQ(stats.fastpathHits, 1u);
}

TEST(CacheShardTest, SingleShardControlDisablesFastpath) {
  // BREW_CACHE_SHARDS=1 (here forced via Options) is the A/B control: one
  // lock, no hit table, pre-sharding behavior.
  SpecManager manager{SpecManager::Options{.workers = 1, .cacheShards = 1}};
  ExecMemory fn = buildConstFn(77);
  const std::vector<ArgValue> none;

  for (int i = 0; i < 3; ++i) {
    auto result = manager.rewrite(intConfig(), PassOptions{}, fn.data(), none);
    ASSERT_TRUE(result.ok()) << result.error().message();
    EXPECT_EQ(reinterpret_cast<const_t>(result->entry())(), 77);
  }
  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.shards, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.fastpathHits, 0u);
}

TEST(CacheShardTest, TwelveThreadHammerKeepsInvariants) {
  constexpr int kThreads = 12;
  constexpr int kFns = 32;
  constexpr int kIters = 400;
  constexpr int64_t kBase = 1000;

  std::vector<ExecMemory> fns;
  fns.reserve(kFns);
  for (int i = 0; i < kFns; ++i) fns.push_back(buildConstFn(kBase + i));

  SpecManager manager{SpecManager::Options{.workers = 2}};
  const Config config = intConfig();
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> calls{0};
  std::vector<std::vector<std::pair<int, CodeHandle>>> retained(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = retained[static_cast<size_t>(t)];
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        const int k = (t * 7 + i) % kFns;
        auto result =
            manager.rewrite(config, PassOptions{}, fns[k].data(), {});
        calls.fetch_add(1);
        ASSERT_TRUE(result.ok()) << result.error().message();
        ASSERT_EQ(reinterpret_cast<const_t>(result->entry())(), kBase + k);
        if (i % 5 == t % 5) mine.emplace_back(k, *result);  // retain
        if (mine.size() > 16) mine.clear();                 // release burst
        if (i % 97 == 0)
          manager.cache().invalidateTarget(fns[k].data(), fns[k].size());
      }
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true);
  for (std::thread& thread : threads) thread.join();

  const CacheStats stats = manager.cache().stats();
  // Every rewrite call resolved to exactly one hit or one miss.
  EXPECT_EQ(stats.hits + stats.misses, calls.load());
  EXPECT_GT(stats.fastpathHits, 0u);
  EXPECT_GT(stats.invalidations, 0u);
  EXPECT_LE(stats.codeBytes, stats.capacityBytes);

  // Handles retained across eviction/invalidation still hold live code.
  for (const auto& mine : retained)
    for (const auto& [k, handle] : mine) {
      ASSERT_TRUE(static_cast<bool>(handle));
      EXPECT_GE(handle.useCount(), 1u);
      EXPECT_EQ(reinterpret_cast<const_t>(handle.entry())(), kBase + k);
    }

  retained.clear();
  manager.cache().clear();
  EXPECT_EQ(manager.cache().stats().entries, 0u);
  EXPECT_EQ(manager.cache().stats().codeBytes, 0u);
  // Epoch-deferred blocks (published to the hit table, then dropped) all
  // reclaim once no reader is left.
  epoch::drain();
  EXPECT_EQ(epoch::pendingRetired(), 0u);
}

TEST(CacheShardTest, GlobalBudgetEnforcedAcrossShards) {
  constexpr int kThreads = 8;
  constexpr int kFns = 16;
  constexpr int kIters = 200;
  constexpr int64_t kBase = 5000;
  // A few dozen bytes of generated code per entry: this budget holds only
  // a handful of the 16 keys, forcing continuous cross-shard eviction.
  constexpr size_t kBudget = 256;

  std::vector<ExecMemory> fns;
  fns.reserve(kFns);
  for (int i = 0; i < kFns; ++i) fns.push_back(buildConstFn(kBase + i));

  SpecManager manager{
      SpecManager::Options{.workers = 1, .cacheBytes = kBudget}};
  const Config config = intConfig();
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<std::pair<int, CodeHandle>>> retained(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = retained[static_cast<size_t>(t)];
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        const int k = (t + i * 3) % kFns;
        auto result =
            manager.rewrite(config, PassOptions{}, fns[k].data(), {});
        ASSERT_TRUE(result.ok()) << result.error().message();
        ASSERT_EQ(reinterpret_cast<const_t>(result->entry())(), kBase + k);
        if (i % 11 == 0) mine.emplace_back(k, *result);
        if (mine.size() > 8) mine.erase(mine.begin());
      }
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true);
  for (std::thread& thread : threads) thread.join();

  const CacheStats stats = manager.cache().stats();
  EXPECT_GT(stats.evictions, 0u);
  // The budget is one global atomic debited by every shard: at quiescence
  // the cache is within budget (or down to the single protected entry).
  EXPECT_TRUE(stats.codeBytes <= kBudget || stats.entries <= 1)
      << "codeBytes=" << stats.codeBytes << " entries=" << stats.entries;

  // Eviction never invalidated outstanding references.
  for (const auto& mine : retained)
    for (const auto& [k, handle] : mine)
      EXPECT_EQ(reinterpret_cast<const_t>(handle.entry())(), kBase + k);
}

TEST(CacheShardTest, InvalidateRacesFastpathReaders) {
  // Maximize pressure on the seqlock + epoch reclamation path: readers spin
  // on one hot key while an invalidator repeatedly drops it.
  constexpr int kReaders = 6;
  constexpr int kReads = 2000;
  constexpr int kInvalidations = 300;

  ExecMemory fn = buildConstFn(424242);
  SpecManager manager{SpecManager::Options{.workers = 1}};
  const Config config = intConfig();
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kReads; ++i) {
        auto result = manager.rewrite(config, PassOptions{}, fn.data(), {});
        ASSERT_TRUE(result.ok()) << result.error().message();
        ASSERT_EQ(reinterpret_cast<const_t>(result->entry())(), 424242);
      }
    });
  }
  threads.emplace_back([&] {
    ready.fetch_add(1);
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < kInvalidations; ++i) {
      manager.cache().invalidateTarget(fn.data(), fn.size());
      std::this_thread::yield();
    }
  });
  while (ready.load() != kReaders + 1) std::this_thread::yield();
  go.store(true);
  for (std::thread& thread : threads) thread.join();

  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kReaders) * kReads);
  EXPECT_GE(stats.misses, 1u);
  epoch::drain();
  EXPECT_EQ(epoch::pendingRetired(), 0u);
}

}  // namespace
}  // namespace brew
