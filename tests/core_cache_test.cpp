// Specialization cache tests: single-flight deduplication across threads,
// LRU eviction under a byte budget (with outstanding handles surviving),
// content-sensitive keying, and asynchronous install through SpecManager.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/brew.h"
#include "core/code_cache.hpp"
#include "core/rewriter.hpp"
#include "core/spec_manager.hpp"
#include "jit/assembler.hpp"
#include "support/telemetry.hpp"

namespace brew {
namespace {

__attribute__((noinline)) int addmul(int a, int b) { return a * 7 + b; }
typedef int (*addmul_t)(int, int);

__attribute__((noinline)) int64_t triple(int64_t x) { return x * 3; }
typedef int64_t (*triple_t)(int64_t);

typedef int64_t (*load_t)(const int64_t*);

// "mov rax, [rdi]; ret" built directly — a compiled-C load would pick up
// sanitizer instrumentation the tracer cannot follow.
ExecMemory buildLoadThrough() {
  jit::Assembler as;
  as.movRegMem(isa::Reg::rax, isa::MemOperand{.base = isa::Reg::rdi}, 8);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  return std::move(*mem);
}

static_assert(!std::is_copy_constructible_v<RewrittenFunction>,
              "RewrittenFunction is move-only; share code via shareHandle()");
static_assert(std::is_move_constructible_v<RewrittenFunction>);
static_assert(std::is_copy_constructible_v<CodeHandle>,
              "CodeHandle copies retain");

Config knownFirstParam() {
  Config config;
  config.setParamKnown(0);
  config.setReturnKind(ReturnKind::Int);
  return config;
}

TEST(ConfigFingerprint, DeterministicAndShapeSensitive) {
  Config a = knownFirstParam();
  Config b = knownFirstParam();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  Config c = knownFirstParam();
  c.setParamKnown(1);
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  Config d = knownFirstParam();
  d.setReturnKind(ReturnKind::Float);
  EXPECT_NE(a.fingerprint(), d.fingerprint());

  PassOptions defaults;
  PassOptions ablation;
  ablation.peephole = false;
  EXPECT_NE(defaults.fingerprint(), ablation.fingerprint());
}

TEST(CacheKeying, UnknownArgumentsShareOneEntry) {
  // Only known values reach the generated code, so rewrites differing in
  // unknown arguments must alias.
  Config config;
  const ArgValue a[] = {ArgValue::fromInt(1), ArgValue::fromInt(2)};
  const ArgValue b[] = {ArgValue::fromInt(30), ArgValue::fromInt(40)};
  EXPECT_EQ(hashSpecArgs(config, a), hashSpecArgs(config, b));

  Config known = knownFirstParam();
  EXPECT_NE(hashSpecArgs(known, a), hashSpecArgs(known, b));
}

TEST(CodeCacheTest, EightThreadsSameKeyTraceOnce) {
  SpecManager manager;
  const Config config = knownFirstParam();
  const std::vector<ArgValue> args = {ArgValue::fromInt(42),
                                      ArgValue::fromInt(0)};

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<void*> entries(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      auto handle = manager.rewrite(config, PassOptions{},
                                    reinterpret_cast<const void*>(&addmul),
                                    args);
      ASSERT_TRUE(handle.ok()) << handle.error().message();
      entries[static_cast<size_t>(t)] = handle->entry();
      EXPECT_EQ(reinterpret_cast<addmul_t>(handle->entry())(1, 2),
                42 * 7 + 2);
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true);
  for (std::thread& t : threads) t.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(entries[0], entries[t]);
  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CodeCacheTest, RewriterAttachedToManagerHitsCache) {
  SpecManager manager;
  Rewriter rewriter{knownFirstParam(), manager};
  auto first = rewriter.rewrite(reinterpret_cast<const void*>(&addmul), 5, 0);
  ASSERT_TRUE(first.ok()) << first.error().message();
  auto second = rewriter.rewrite(reinterpret_cast<const void*>(&addmul), 5, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->entry(), second->entry());
  EXPECT_EQ(manager.cache().stats().misses, 1u);
  EXPECT_EQ(manager.cache().stats().hits, 1u);
  // Both RewrittenFunctions and the cache entry share one block.
  EXPECT_EQ(first->handle().useCount(), 3u);
}

TEST(CodeCacheTest, EvictionKeepsOutstandingHandlesExecutable) {
  SpecManager manager{SpecManager::Options{.workers = 1, .cacheBytes = 1}};
  Rewriter rewriter{knownFirstParam(), manager};

  auto first = rewriter.rewrite(reinterpret_cast<const void*>(&addmul), 9, 0);
  ASSERT_TRUE(first.ok()) << first.error().message();
  // Second key evicts the first (the 1-byte budget holds at most the
  // newest entry), but the held handle must stay executable.
  auto second = rewriter.rewrite(reinterpret_cast<const void*>(&triple), 4);
  ASSERT_TRUE(second.ok()) << second.error().message();

  const CacheStats stats = manager.cache().stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.entries, 1u);
  EXPECT_EQ(first->as<addmul_t>()(1, 2), 9 * 7 + 2);
  EXPECT_EQ(second->as<triple_t>()(4), 12);

  // The evicted key now misses again.
  auto third = rewriter.rewrite(reinterpret_cast<const void*>(&addmul), 9, 0);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(manager.cache().stats().misses, 3u);
}

TEST(CodeCacheTest, KnownPointeeContentChangesTheKey) {
  // The key hashes the bytes BEHIND a KnownPtr parameter: same pointer with
  // mutated contents is a different specialization (the PGAS domain-map
  // redistribution case).
  static int64_t cell = 100;
  ExecMemory loadThrough = buildLoadThrough();
  SpecManager manager;
  Config config;
  config.setParamKnownPtr(0, sizeof cell);
  config.setReturnKind(ReturnKind::Int);
  Rewriter rewriter{config, manager};

  auto first = rewriter.rewrite(loadThrough.data(), &cell);
  ASSERT_TRUE(first.ok()) << first.error().message();
  EXPECT_EQ(first->as<load_t>()(nullptr), 100);

  cell = 200;
  auto second = rewriter.rewrite(loadThrough.data(), &cell);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->as<load_t>()(nullptr), 200);
  EXPECT_EQ(manager.cache().stats().misses, 2u);
  EXPECT_EQ(manager.cache().stats().hits, 0u);
}

TEST(CodeCacheTest, FailuresAreNotCached) {
  static const uint8_t bogus[] = {0x0f, 0x31, 0xc3};  // rdtsc; ret
  SpecManager manager;
  const std::vector<ArgValue> none;
  for (int i = 0; i < 2; ++i) {
    auto result = manager.rewrite(Config{}, PassOptions{}, bogus, none);
    EXPECT_FALSE(result.ok());
  }
  EXPECT_EQ(manager.cache().stats().misses, 2u);  // retried, not served
  EXPECT_EQ(manager.cache().stats().entries, 0u);
}

TEST(CodeCacheTest, HandleSurvivesCacheClear) {
  SpecManager manager;
  auto result =
      manager.rewrite(knownFirstParam(), PassOptions{},
                      reinterpret_cast<const void*>(&addmul),
                      std::vector<ArgValue>{ArgValue::fromInt(3),
                                            ArgValue::fromInt(0)});
  ASSERT_TRUE(result.ok()) << result.error().message();
  CodeHandle handle = *result;
  manager.cache().clear();
  EXPECT_EQ(manager.cache().stats().entries, 0u);
  EXPECT_EQ(handle.useCount(), 2u);  // `result` + `handle`, no cache ref
  EXPECT_EQ(reinterpret_cast<addmul_t>(handle.entry())(0, 5), 3 * 7 + 5);
}

TEST(SpecManagerAsync, InstallObservedBySpinningCaller) {
  SpecManager manager{SpecManager::Options{.workers = 2}};
  Config config = knownFirstParam();
  auto request = manager.rewriteAsync(
      config, PassOptions{}, reinterpret_cast<const void*>(&addmul),
      {ArgValue::fromInt(42), ArgValue::fromInt(0)});
  ASSERT_NE(request, nullptr);

  // Callable from the first instant: original behavior until the worker
  // publishes, specialized behavior after. Spin until the switch.
  addmul_t fn = request->as<addmul_t>();
  int observed = fn(1, 2);
  EXPECT_TRUE(observed == 1 * 7 + 2 || observed == 42 * 7 + 2);
  for (int spin = 0; spin < 100000000 && observed != 42 * 7 + 2; ++spin)
    observed = fn(1, 2);
  EXPECT_EQ(observed, 42 * 7 + 2);

  request->wait();
  ASSERT_TRUE(request->ok()) << request->error().message();
  // The stable stub entry does not move when the worker publishes.
  EXPECT_EQ(reinterpret_cast<void*>(fn), request->entry());
  EXPECT_GT(request->handle().codeSize(), 0u);
  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.asyncInstalls, 1u);
  EXPECT_GT(stats.asyncLatencyNsMax, 0u);
  EXPECT_GE(stats.asyncLatencyNsTotal, stats.asyncLatencyNsMax);
}

TEST(TelemetryMirror, RegistryCountersTrackCacheBehavior) {
  // Every per-instance CacheStats movement is mirrored into the global
  // telemetry registry (brew_telemetry_snapshot must agree with
  // brew_getcachestats), so deltas around a private cache's activity must
  // match its own stats exactly — gtest runs tests sequentially and no
  // async work is in flight here.
  using telemetry::counter;
  using telemetry::CounterId;
  const uint64_t hits0 = counter(CounterId::CacheHits).value();
  const uint64_t misses0 = counter(CounterId::CacheMisses).value();
  const uint64_t evictions0 = counter(CounterId::CacheEvictions).value();
  const uint64_t insertions0 = counter(CounterId::CacheInsertions).value();
  const int64_t bytes0 =
      telemetry::gauge(telemetry::GaugeId::CacheBytesLive).value();

  {
    SpecManager manager{SpecManager::Options{.workers = 1, .cacheBytes = 1}};
    Rewriter rewriter{knownFirstParam(), manager};
    auto a = rewriter.rewrite(reinterpret_cast<const void*>(&addmul), 9, 0);
    ASSERT_TRUE(a.ok()) << a.error().message();
    auto hit = rewriter.rewrite(reinterpret_cast<const void*>(&addmul), 9, 0);
    ASSERT_TRUE(hit.ok());
    // Second key evicts the first under the 1-byte budget.
    auto b = rewriter.rewrite(reinterpret_cast<const void*>(&triple), 4);
    ASSERT_TRUE(b.ok()) << b.error().message();

    const CacheStats stats = manager.cache().stats();
    EXPECT_EQ(counter(CounterId::CacheHits).value() - hits0, stats.hits);
    EXPECT_EQ(counter(CounterId::CacheMisses).value() - misses0,
              stats.misses);
    EXPECT_EQ(counter(CounterId::CacheEvictions).value() - evictions0,
              stats.evictions);
    EXPECT_EQ(counter(CounterId::CacheInsertions).value() - insertions0,
              stats.insertions);
    EXPECT_EQ(
        telemetry::gauge(telemetry::GaugeId::CacheBytesLive).value() - bytes0,
        static_cast<int64_t>(stats.codeBytes));
  }
  // Cache destruction returns the byte gauge to its starting level.
  EXPECT_EQ(telemetry::gauge(telemetry::GaugeId::CacheBytesLive).value(),
            bytes0);
}

TEST(TelemetryMirror, CapiSnapshotAgreesWithCacheStats) {
  // The acceptance contract: the "cache.*" counters seen through
  // brew_telemetry_snapshot track the same events as brew_getcachestats on
  // the process-wide cache. Compare deltas across a forced miss + hit.
  auto capiCounter = [](const char* name) -> uint64_t {
    brew_telemetry snap{};
    brew_telemetry_snapshot(&snap);
    for (size_t i = 0; i < snap.counter_count; ++i)
      if (std::strcmp(snap.counters[i].name, name) == 0)
        return snap.counters[i].value;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };

  brew_cache_stats before{};
  brew_getcachestats(&before);
  const uint64_t hits0 = capiCounter("cache.hits");
  const uint64_t misses0 = capiCounter("cache.misses");

  SpecManager& process = SpecManager::process();
  const std::vector<ArgValue> args = {ArgValue::fromInt(77),
                                      ArgValue::fromInt(0)};
  for (int i = 0; i < 2; ++i) {
    auto result = process.rewrite(knownFirstParam(), PassOptions{},
                                  reinterpret_cast<const void*>(&addmul),
                                  args);
    ASSERT_TRUE(result.ok()) << result.error().message();
  }

  brew_cache_stats after{};
  brew_getcachestats(&after);
  EXPECT_EQ(capiCounter("cache.hits") - hits0, after.hits - before.hits);
  EXPECT_EQ(capiCounter("cache.misses") - misses0,
            after.misses - before.misses);
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
}

TEST(SpecManagerAsync, FailedAsyncKeepsOriginalEntry) {
  static const uint8_t bogus[] = {0x0f, 0x31, 0xc3};  // rdtsc; ret
  SpecManager manager;
  auto request =
      manager.rewriteAsync(Config{}, PassOptions{}, bogus, {});
  request->wait();
  EXPECT_FALSE(request->ok());
  EXPECT_FALSE(request->handle());
  // entry() still routes somewhere callable: the original code.
  EXPECT_NE(request->entry(), nullptr);
}

}  // namespace
}  // namespace brew
