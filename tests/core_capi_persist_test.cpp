// Persistence C API smoke — brew_options_set_cache_dir routed through
// brew_configure, then brew_getpersiststats observed across a cold
// rewrite and a warm cache hit. Runs in its own binary because
// brew_configure freezes the process-wide manager on first rewrite, so
// the cache directory must be installed before any other test touches
// the C API.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/brew.h"

namespace {

__attribute__((noinline)) int addmul(int a, int b) { return a * 7 + b; }
typedef int (*addmul_t)(int, int);

std::string makeTempDir() {
  char templ[] = "/tmp/brew-capi-persist-XXXXXX";
  const char* dir = mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

TEST(CApiPersist, NullStatsPointerIsNoop) {
  brew_getpersiststats(nullptr);  // must not crash (before configure, too)
}

TEST(CApiPersist, CacheDirConfiguresAndStatsTrackColdThenWarm) {
  const std::string dir = makeTempDir();
  ASSERT_FALSE(dir.empty());

  brew_options* opt = brew_options_init();
  ASSERT_NE(opt, nullptr);
  brew_options_set_cache_dir(opt, nullptr);  // tolerated, clears the field
  brew_options_set_cache_dir(opt, dir.c_str());
  ASSERT_EQ(brew_configure(opt), 0);
  brew_options_free(opt);

  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);

  brew_func* h = brew_rewrite2(conf, (void*)addmul, 6, 0);
  ASSERT_NE(h, nullptr) << brew_lastError(conf);
  EXPECT_EQ(((addmul_t)brew_func_entry(h))(0, 5), addmul(6, 5));

  brew_persist_stats cold;
  std::memset(&cold, 0xff, sizeof cold);
  brew_getpersiststats(&cold);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_GE(cold.misses, 1u);       // empty store probed before tracing
  EXPECT_GE(cold.writes, 1u);       // finished unit published to disk
  EXPECT_EQ(cold.rejects, 0u);
  EXPECT_EQ(cold.serving_pages, 1u);  // first store binds the page socket

  // Same key again: served from the in-memory cache, so persist traffic
  // must not move — the store is a backstop, not the hot path.
  brew_func* again = brew_rewrite2(conf, (void*)addmul, 6, 0);
  ASSERT_NE(again, nullptr);
  brew_persist_stats warm;
  brew_getpersiststats(&warm);
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_EQ(warm.writes, cold.writes);
  EXPECT_EQ(warm.shared_maps, 0u);  // no sibling process in this test

  brew_release_h(again);
  brew_release_h(h);
  brew_freeConf(conf);

  const std::string cleanup = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cleanup.c_str()), 0);
}

}  // namespace
