// C API tests — the paper's interface (Figures 2, 3, 5) end to end.
#include <gtest/gtest.h>

#include "core/brew.h"
#include "stencil/stencil.hpp"

namespace {

__attribute__((noinline)) int addmul(int a, int b) { return a * 7 + b; }
typedef int (*addmul_t)(int, int);

__attribute__((noinline)) double scale(double x, double factor) {
  return x * factor;
}
typedef double (*scale_t)(double, double);

TEST(CApi, Figure2BasicUsage) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setret(conf, BREW_RET_INT);
  void* newfunc =
      brew_rewrite(conf, (void*)addmul, (uint64_t)1, (uint64_t)2);
  ASSERT_NE(newfunc, nullptr) << brew_lastError(conf);
  EXPECT_EQ(((addmul_t)newfunc)(1, 2), addmul(1, 2));
  EXPECT_EQ(((addmul_t)newfunc)(-3, 10), addmul(-3, 10));
  brew_release(newfunc);
  brew_freeConf(conf);
}

TEST(CApi, Figure3KnownParameterIgnoredAtCallTime) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  addmul_t newfunc =
      (addmul_t)brew_rewrite(conf, (void*)addmul, (uint64_t)42, (uint64_t)2);
  ASSERT_NE(newfunc, nullptr) << brew_lastError(conf);
  // "ignores value 1"
  EXPECT_EQ(newfunc(1, 2), 42 * 7 + 2);
  EXPECT_EQ(newfunc(999, 5), 42 * 7 + 5);
  brew_release((void*)newfunc);
  brew_freeConf(conf);
}

TEST(CApi, DoubleParameters) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar_double(conf, 1, BREW_UNKNOWN);
  brew_setpar_double(conf, 2, BREW_KNOWN);
  brew_setret(conf, BREW_RET_DOUBLE);
  scale_t scaled =
      (scale_t)brew_rewrite(conf, (void*)scale, 0.0, 2.5);
  ASSERT_NE(scaled, nullptr) << brew_lastError(conf);
  EXPECT_DOUBLE_EQ(scaled(4.0, 999.0), 10.0);  // factor fixed at 2.5
  brew_release((void*)scaled);
  brew_freeConf(conf);
}

TEST(CApi, Figure5StencilSpecialization) {
  const brew_stencil s = brew::stencil::fivePoint();
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 3);
  brew_setpar(conf, 2, BREW_KNOWN);        // xs
  brew_setpar_ptr(conf, 3, sizeof s);      // BREW_PTR_TOKNOWN
  brew_setret(conf, BREW_RET_DOUBLE);
  brew_stencil_fn app2 = (brew_stencil_fn)brew_rewrite(
      conf, (void*)brew_stencil_apply, (uint64_t)0, (uint64_t)64,
      (uint64_t)&s);
  ASSERT_NE(app2, nullptr) << brew_lastError(conf);

  brew::stencil::Matrix m(64, 32);
  m.fillDeterministic();
  for (int y = 1; y < 31; ++y)
    for (int x = 1; x < 63; ++x) {
      const double* cell = m.data() + y * 64 + x;
      ASSERT_DOUBLE_EQ(app2(cell, 64, &s),
                       brew_stencil_apply(cell, 64, &s));
    }
  brew_stats stats;
  brew_getstats(conf, &stats);
  EXPECT_GT(stats.elided_instructions, 10u);
  EXPECT_GT(stats.code_bytes, 0u);
  brew_release((void*)app2);
  brew_freeConf(conf);
}

TEST(CApi, SetmemDeclaresConstantData) {
  static int64_t table[4] = {5, 10, 15, 20};
  // lookup(i) through a compiled helper using the table via a pointer.
  struct Helpers {
    static int64_t lookup(const int64_t* t, long i) { return t[i]; }
  };
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);  // table pointer fixed
  brew_setpar(conf, 2, BREW_KNOWN);  // index fixed
  brew_setmem(conf, table, table + 4, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  using lookup_t = int64_t (*)(const int64_t*, long);
  lookup_t fn = (lookup_t)brew_rewrite(conf, (void*)&Helpers::lookup,
                                       (uint64_t)table, (uint64_t)2);
  ASSERT_NE(fn, nullptr) << brew_lastError(conf);
  EXPECT_EQ(fn(nullptr, 0), 15);
  brew_release((void*)fn);
  brew_freeConf(conf);
}

TEST(CApi, FailureReportsMessage) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 0);
  static const uint8_t bogus[] = {0x0f, 0xa2, 0xc3};  // cpuid; ret
  void* result = brew_rewrite(conf, (const void*)bogus);
  EXPECT_EQ(result, nullptr);
  EXPECT_NE(std::string(brew_lastError(conf)).find("Undecodable"),
            std::string::npos);
  brew_freeConf(conf);
}

TEST(CApi, NullSafety) {
  EXPECT_EQ(brew_rewrite(nullptr, (void*)addmul), nullptr);
  brew_conf* conf = brew_initConf();
  EXPECT_EQ(brew_rewrite(conf, nullptr), nullptr);
  brew_release(nullptr);           // no-op
  brew_setpar(nullptr, 1, BREW_KNOWN);
  brew_setpar(conf, 0, BREW_KNOWN);   // out of range: ignored
  brew_setpar(conf, 99, BREW_KNOWN);  // out of range: ignored
  brew_freeConf(conf);
  brew_freeConf(nullptr);
}

TEST(CApi, NoUnrollFlag) {
  // Sum loop with known bound: NOUNROLL keeps it a loop.
  struct Helpers {
    static __attribute__((noinline)) int64_t sum(int64_t n) {
      int64_t s = 0;
      for (int64_t i = 1; i <= n; i++) s += i;
      return s;
    }
  };
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 1);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  brew_setfn(conf, (void*)&Helpers::sum, BREW_FN_NOUNROLL);
  using sum_t = int64_t (*)(int64_t);
  sum_t fn = (sum_t)brew_rewrite(conf, (void*)&Helpers::sum, (uint64_t)50);
  ASSERT_NE(fn, nullptr) << brew_lastError(conf);
  EXPECT_EQ(fn(0), 50 * 51 / 2);
  brew_stats stats;
  brew_getstats(conf, &stats);
  EXPECT_LT(stats.code_bytes, 512u);  // loop kept, not 50x unrolled
  brew_release((void*)fn);
  brew_freeConf(conf);
}

}  // namespace
