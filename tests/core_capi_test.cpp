// C API tests — the paper's interface (Figures 2, 3, 5) end to end.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>

#include "core/brew.h"
#include "stencil/stencil.hpp"

namespace {

__attribute__((noinline)) int addmul(int a, int b) { return a * 7 + b; }
typedef int (*addmul_t)(int, int);

__attribute__((noinline)) int mulsub(int a, int b) { return a * 3 - b; }
__attribute__((noinline)) int xorshift(int a, int b) { return (a ^ b) + a; }

__attribute__((noinline)) double scale(double x, double factor) {
  return x * factor;
}
typedef double (*scale_t)(double, double);

// One release per handle; helper for the Figure tests, which only care
// about the entry pointer.
void* rewriteEntry(brew_conf* conf, const void* fn, brew_func** out,
                   uint64_t a, uint64_t b) {
  *out = brew_rewrite2(conf, fn, a, b);
  return *out != nullptr ? brew_func_entry(*out) : nullptr;
}

TEST(CApi, Figure2BasicUsage) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setret(conf, BREW_RET_INT);
  brew_func* h = nullptr;
  void* newfunc = rewriteEntry(conf, (void*)addmul, &h, 1, 2);
  ASSERT_NE(newfunc, nullptr) << brew_lastError(conf);
  EXPECT_EQ(((addmul_t)newfunc)(1, 2), addmul(1, 2));
  EXPECT_EQ(((addmul_t)newfunc)(-3, 10), addmul(-3, 10));
  brew_release_h(h);
  brew_freeConf(conf);
}

TEST(CApi, Figure3KnownParameterIgnoredAtCallTime) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  brew_func* h = nullptr;
  addmul_t newfunc = (addmul_t)rewriteEntry(conf, (void*)addmul, &h, 42, 2);
  ASSERT_NE(newfunc, nullptr) << brew_lastError(conf);
  // "ignores value 1"
  EXPECT_EQ(newfunc(1, 2), 42 * 7 + 2);
  EXPECT_EQ(newfunc(999, 5), 42 * 7 + 5);
  brew_release_h(h);
  brew_freeConf(conf);
}

TEST(CApi, DoubleParameters) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar_double(conf, 1, BREW_UNKNOWN);
  brew_setpar_double(conf, 2, BREW_KNOWN);
  brew_setret(conf, BREW_RET_DOUBLE);
  brew_func* h = brew_rewrite2(conf, (void*)scale, 0.0, 2.5);
  ASSERT_NE(h, nullptr) << brew_lastError(conf);
  scale_t scaled = (scale_t)brew_func_entry(h);
  EXPECT_DOUBLE_EQ(scaled(4.0, 999.0), 10.0);  // factor fixed at 2.5
  brew_release_h(h);
  brew_freeConf(conf);
}

TEST(CApi, Figure5StencilSpecialization) {
  const brew_stencil s = brew::stencil::fivePoint();
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 3);
  brew_setpar(conf, 2, BREW_KNOWN);        // xs
  brew_setpar_ptr(conf, 3, sizeof s);      // BREW_PTR_TOKNOWN
  brew_setret(conf, BREW_RET_DOUBLE);
  brew_func* h = brew_rewrite2(conf, (void*)brew_stencil_apply, (uint64_t)0,
                               (uint64_t)64, (uint64_t)&s);
  ASSERT_NE(h, nullptr) << brew_lastError(conf);
  brew_stencil_fn app2 = (brew_stencil_fn)brew_func_entry(h);

  brew::stencil::Matrix m(64, 32);
  m.fillDeterministic();
  for (int y = 1; y < 31; ++y)
    for (int x = 1; x < 63; ++x) {
      const double* cell = m.data() + y * 64 + x;
      ASSERT_DOUBLE_EQ(app2(cell, 64, &s),
                       brew_stencil_apply(cell, 64, &s));
    }
  brew_stats stats;
  brew_func_getstats(h, &stats);
  EXPECT_GT(stats.elided_instructions, 10u);
  EXPECT_GT(stats.code_bytes, 0u);
  brew_release_h(h);
  brew_freeConf(conf);
}

// The block-chained tier knobs (docs/BLOCKS.md) flow through the conf
// fingerprint: flipping one must produce a distinct cached specialization,
// and both settings must compute the same results.
TEST(CApi, BlockTierKnobs) {
  brew_conf* chained = brew_initConf();
  brew_setnpar(chained, 2);
  brew_setret(chained, BREW_RET_INT);

  brew_conf* generic = brew_initConf();
  brew_setnpar(generic, 2);
  brew_setret(generic, BREW_RET_INT);
  brew_set_chain_blocks(generic, 0);
  brew_set_reconverge_joins(generic, 0);
  brew_set_side_exit_fallback(generic, 0);
  brew_set_max_fork_depth(generic, 4);

  brew_func* a = brew_rewrite2(chained, (void*)addmul, 3, 4);
  brew_func* b = brew_rewrite2(generic, (void*)addmul, 3, 4);
  ASSERT_NE(a, nullptr) << brew_lastError(chained);
  ASSERT_NE(b, nullptr) << brew_lastError(generic);
  EXPECT_EQ(((addmul_t)brew_func_entry(a))(3, 4), addmul(3, 4));
  EXPECT_EQ(((addmul_t)brew_func_entry(b))(3, 4), addmul(3, 4));
  brew_release_h(a);
  brew_release_h(b);
  brew_freeConf(chained);
  brew_freeConf(generic);
}

TEST(CApi, SetmemDeclaresConstantData) {
  static int64_t table[4] = {5, 10, 15, 20};
  // lookup(i) through a compiled helper using the table via a pointer.
  struct Helpers {
    static int64_t lookup(const int64_t* t, long i) { return t[i]; }
  };
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);  // table pointer fixed
  brew_setpar(conf, 2, BREW_KNOWN);  // index fixed
  brew_setmem(conf, table, table + 4, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  using lookup_t = int64_t (*)(const int64_t*, long);
  brew_func* h = brew_rewrite2(conf, (void*)&Helpers::lookup,
                               (uint64_t)table, (uint64_t)2);
  ASSERT_NE(h, nullptr) << brew_lastError(conf);
  lookup_t fn = (lookup_t)brew_func_entry(h);
  EXPECT_EQ(fn(nullptr, 0), 15);
  brew_release_h(h);
  brew_freeConf(conf);
}

TEST(CApi, FailureReportsMessage) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 0);
  static const uint8_t bogus[] = {0x0f, 0xa2, 0xc3};  // cpuid; ret
  brew_func* result = brew_rewrite2(conf, (const void*)bogus);
  EXPECT_EQ(result, nullptr);
  EXPECT_NE(std::string(brew_lastError(conf)).find("Undecodable"),
            std::string::npos);
  brew_freeConf(conf);
}

TEST(CApi, NullSafety) {
  EXPECT_EQ(brew_rewrite2(nullptr, (void*)addmul), nullptr);
  brew_conf* conf = brew_initConf();
  EXPECT_EQ(brew_rewrite2(conf, nullptr), nullptr);
  brew_release_h(nullptr);         // no-op
  brew_setpar(nullptr, 1, BREW_KNOWN);
  brew_setpar(conf, 0, BREW_KNOWN);   // out of range: ignored
  brew_setpar(conf, 99, BREW_KNOWN);  // out of range: ignored
  EXPECT_EQ(brew_dispatch_create(nullptr, (void*)addmul, 1), nullptr);
  EXPECT_EQ(brew_dispatch_create(conf, nullptr, 1), nullptr);
  EXPECT_EQ(brew_dispatch_entry(nullptr), nullptr);
  EXPECT_EQ(brew_dispatch_variant_count(nullptr), 0u);
  brew_dispatch_free(nullptr);     // no-op
  brew_dispatch_bump_epoch(nullptr);
  EXPECT_EQ(brew_func_variants((void*)addmul, nullptr, 0), 0u);
  brew_freeConf(conf);
  brew_freeConf(nullptr);
}

TEST(CApiV2, HandleLifecycle) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  brew_func* h = brew_rewrite2(conf, (void*)addmul, (uint64_t)6, (uint64_t)0);
  ASSERT_NE(h, nullptr) << brew_lastError(conf);

  addmul_t fn = (addmul_t)brew_func_entry(h);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(1, 2), 6 * 7 + 2);

  brew_stats stats;
  brew_func_getstats(h, &stats);
  EXPECT_GT(stats.code_bytes, 0u);
  EXPECT_GT(stats.traced_instructions, 0u);

  // A retained handle needs two releases; the code stays callable until
  // the last one.
  brew_func* same = brew_retain(h);
  EXPECT_EQ(same, h);
  brew_release_h(h);
  EXPECT_EQ(((addmul_t)brew_func_entry(same))(0, 5), 6 * 7 + 5);
  brew_release_h(same);
  brew_release_h(nullptr);  // no-op
  EXPECT_EQ(brew_func_entry(nullptr), nullptr);
  brew_freeConf(conf);
}

TEST(CApiV2, CacheDeduplicatesIdenticalRewrites) {
  brew_cache_reset();
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);

  brew_func* a = brew_rewrite2(conf, (void*)addmul, (uint64_t)8, (uint64_t)0);
  brew_func* b = brew_rewrite2(conf, (void*)addmul, (uint64_t)8, (uint64_t)0);
  ASSERT_NE(a, nullptr) << brew_lastError(conf);
  ASSERT_NE(b, nullptr) << brew_lastError(conf);
  EXPECT_NE(a, b);  // distinct handles...
  EXPECT_EQ(brew_func_entry(a), brew_func_entry(b));  // ...same code

  brew_cache_stats cache;
  brew_getcachestats(&cache);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.entries, 1u);
  EXPECT_GT(cache.code_bytes, 0u);
  EXPECT_GT(cache.capacity_bytes, 0u);

  brew_release_h(a);
  brew_release_h(b);
  brew_freeConf(conf);
}

TEST(CApiV2, CacheBudgetDrivesEviction) {
  brew_cache_reset();
  brew_cache_set_budget(1);
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);

  brew_func* a = brew_rewrite2(conf, (void*)addmul, (uint64_t)1, (uint64_t)0);
  brew_func* b = brew_rewrite2(conf, (void*)addmul, (uint64_t)2, (uint64_t)0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  brew_cache_stats cache;
  brew_getcachestats(&cache);
  EXPECT_GE(cache.evictions, 1u);
  // The evicted rewrite stays executable through its handle.
  EXPECT_EQ(((addmul_t)brew_func_entry(a))(9, 3), 1 * 7 + 3);

  brew_release_h(a);
  brew_release_h(b);
  brew_freeConf(conf);
  brew_cache_reset();
  brew_cache_set_budget(64 << 20);
}

TEST(CApi, NoUnrollFlag) {
  // Sum loop with known bound: NOUNROLL keeps it a loop.
  struct Helpers {
    static __attribute__((noinline)) int64_t sum(int64_t n) {
      int64_t s = 0;
      for (int64_t i = 1; i <= n; i++) s += i;
      return s;
    }
  };
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 1);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  brew_setfn(conf, (void*)&Helpers::sum, BREW_FN_NOUNROLL);
  using sum_t = int64_t (*)(int64_t);
  brew_func* h = brew_rewrite2(conf, (void*)&Helpers::sum, (uint64_t)50);
  ASSERT_NE(h, nullptr) << brew_lastError(conf);
  sum_t fn = (sum_t)brew_func_entry(h);
  EXPECT_EQ(fn(0), 50 * 51 / 2);
  brew_stats stats;
  brew_func_getstats(h, &stats);
  EXPECT_LT(stats.code_bytes, 512u);  // loop kept, not 50x unrolled
  brew_release_h(h);
  brew_freeConf(conf);
}

/* ---- brew_dispatch ----------------------------------------------------- */

TEST(CApiDispatch, MultiVersionDispatchAndIntrospection) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setret(conf, BREW_RET_INT);
  // Dispatch on parameter 1 of addmul: variants bake the first argument.
  // The variadic values are the tracing prototype (param 1 is replaced
  // per variant).
  brew_dispatch* d =
      brew_dispatch_create(conf, (void*)addmul, 1, (uint64_t)0, (uint64_t)0);
  ASSERT_NE(d, nullptr) << brew_lastError(conf);
  addmul_t entry = (addmul_t)brew_dispatch_entry(d);
  ASSERT_NE(entry, nullptr);

  // Hammer two hot keys past the sampling gate and promotion threshold.
  // Every call must stay correct whether it runs the original, the stub
  // miss path, or a specialized variant.
  for (int round = 0; round < 300; ++round) {
    EXPECT_EQ(entry(4, round), addmul(4, round));
    EXPECT_EQ(entry(9, round), addmul(9, round));
  }
  EXPECT_GE(brew_dispatch_variant_count(d), 1u);
  EXPECT_LE(brew_dispatch_variant_count(d), 4u);

  // Process-wide aggregate sees this dispatcher.
  brew_variant_stats vs;
  brew_getvariantstats(&vs);
  EXPECT_GE(vs.functions, 1u);
  EXPECT_GE(vs.variants_live, 1u);
  EXPECT_GT(vs.variant_hits + vs.table_hits + vs.misses, 0u);

  // Per-function snapshot: keys are the observed hot values.
  brew_func_variant vars[8];
  size_t n = brew_func_variants((void*)addmul, vars, 8);
  ASSERT_GE(n, 1u);
  ASSERT_LE(n, 8u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(vars[i].key == 4u || vars[i].key == 9u);
    EXPECT_NE(vars[i].entry, nullptr);
    EXPECT_GT(vars[i].code_bytes, 0u);
  }
  // A too-small buffer still reports the live count.
  EXPECT_EQ(brew_func_variants((void*)addmul, vars, 0), n);

  // Epoch bump retires every variant; dispatch keeps working.
  brew_dispatch_bump_epoch(d);
  EXPECT_EQ(entry(4, 1), addmul(4, 1));
  brew_dispatch_free(d);
  brew_freeConf(conf);
}

TEST(CApiDispatch, RejectsFloatAndOutOfRangeParam) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar_double(conf, 1, BREW_UNKNOWN);
  brew_setpar_double(conf, 2, BREW_UNKNOWN);
  brew_setret(conf, BREW_RET_DOUBLE);
  EXPECT_EQ(brew_dispatch_create(conf, (void*)scale, 1), nullptr);
  EXPECT_STRNE(brew_lastError(conf), "");
  EXPECT_EQ(brew_dispatch_create(conf, (void*)scale, 0), nullptr);
  EXPECT_EQ(brew_dispatch_create(conf, (void*)scale, 3), nullptr);
  brew_freeConf(conf);
}

/* ---- brew_rewrite_batch ----------------------------------------------- */

TEST(CApiBatch, EmptyBatchCompletesImmediately) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setret(conf, BREW_RET_INT);
  brew_batch* batch = brew_rewrite_batch(conf, nullptr, 0, (uint64_t)1,
                                         (uint64_t)2);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(brew_batch_size(batch), 0u);
  EXPECT_EQ(brew_batch_next(batch), -1);  // nothing to wait for
  EXPECT_EQ(brew_batch_next(batch), -1);  // and stays that way
  brew_batch_free(batch);
  brew_freeConf(conf);
}

TEST(CApiBatch, HandlesArriveInCompletionOrderEachIndexOnce) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  const void* fns[] = {(const void*)addmul, (const void*)mulsub,
                       (const void*)xorshift};
  brew_batch* batch =
      brew_rewrite_batch(conf, fns, 3, (uint64_t)21, (uint64_t)0);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(brew_batch_size(batch), 3u);

  std::set<int> claimed;
  for (int i = 0; i < 3; ++i) {
    const int index = brew_batch_next(batch);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, 3);
    EXPECT_TRUE(claimed.insert(index).second) << "index returned twice";
    brew_func* fn = brew_batch_take(batch, (size_t)index);
    ASSERT_NE(fn, nullptr) << brew_lastError(conf);
    auto specialized = (addmul_t)brew_func_entry(fn);
    int (*original)(int, int) =
        index == 0 ? addmul : (index == 1 ? mulsub : xorshift);
    EXPECT_EQ(specialized(1, 5), original(21, 5));  // arg 1 baked to 21
    brew_release_h(fn);
  }
  EXPECT_EQ(brew_batch_next(batch), -1);  // all indexes claimed
  brew_batch_free(batch);
  brew_freeConf(conf);
}

TEST(CApiBatch, DuplicateFunctionsSingleFlight) {
  brew_cache_reset();
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);

  brew_cache_stats before{};
  brew_getcachestats(&before);
  /* A baked value no other test uses, so the key is cold. */
  const void* fns[] = {(const void*)addmul, (const void*)addmul,
                       (const void*)addmul, (const void*)addmul};
  brew_batch* batch =
      brew_rewrite_batch(conf, fns, 4, (uint64_t)4242, (uint64_t)0);
  ASSERT_NE(batch, nullptr);

  void* entry = nullptr;
  for (int i = 0; i < 4; ++i) {
    const int index = brew_batch_next(batch);
    ASSERT_GE(index, 0);
    brew_func* fn = brew_batch_take(batch, (size_t)index);
    ASSERT_NE(fn, nullptr) << brew_lastError(conf);
    if (entry == nullptr) entry = brew_func_entry(fn);
    /* All four items share one cached code object. */
    EXPECT_EQ(brew_func_entry(fn), entry);
    brew_release_h(fn);
  }
  brew_cache_stats after{};
  brew_getcachestats(&after);
  EXPECT_EQ(after.misses - before.misses, 1u);  /* traced exactly once */
  EXPECT_EQ(after.hits - before.hits, 3u);
  brew_batch_free(batch);
  brew_freeConf(conf);
}

TEST(CApiBatch, FailingFunctionDoesNotPoisonTheRest) {
  static const uint8_t bogus[] = {0x0f, 0xa2, 0xc3};  // cpuid; ret
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  const void* fns[] = {(const void*)addmul, (const void*)bogus,
                       (const void*)mulsub, nullptr};
  brew_batch* batch =
      brew_rewrite_batch(conf, fns, 4, (uint64_t)7, (uint64_t)0);
  ASSERT_NE(batch, nullptr);

  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 4; ++i) {
    const int index = brew_batch_next(batch);
    ASSERT_GE(index, 0);
    brew_func* fn = brew_batch_take(batch, (size_t)index);
    if (index == 1 || index == 3) {
      EXPECT_EQ(fn, nullptr);
      EXPECT_STRNE(brew_lastError(conf), "");  // claim reported the cause
      ++failures;
    } else {
      ASSERT_NE(fn, nullptr) << brew_lastError(conf);
      auto specialized = (addmul_t)brew_func_entry(fn);
      EXPECT_EQ(specialized(0, 9), index == 0 ? addmul(7, 9) : mulsub(7, 9));
      brew_release_h(fn);
      ++successes;
    }
  }
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(successes, 2);
  brew_batch_free(batch);
  brew_freeConf(conf);
}

TEST(CApiBatch, LastErrorStaysThreadLocal) {
  static const uint8_t bogus[] = {0x0f, 0xa2, 0xc3};  // cpuid; ret
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 0);
  const void* fns[] = {(const void*)bogus};
  brew_batch* batch = brew_rewrite_batch(conf, fns, 1);
  ASSERT_NE(batch, nullptr);

  /* Claim the failure on a helper thread: the error must land in THAT
   * thread's slot and never leak into this one. */
  std::string helperError;
  std::thread helper([&] {
    const int index = brew_batch_next(batch);
    EXPECT_EQ(index, 0);
    helperError = brew_lastError(conf);
  });
  helper.join();
  EXPECT_NE(helperError, "");
  EXPECT_STREQ(brew_lastError(conf), "");  // main thread never failed

  brew_batch_free(batch);
  brew_freeConf(conf);
}

}  // namespace
