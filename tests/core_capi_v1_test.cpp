// Tests for the deprecated v1 brew_* pointer shim. Built only when the
// repo is configured with -DBREW_ENABLE_V1_API=ON; the default build has
// no v1 symbols at all (see scripts/check_api_shims.sh).
#include <gtest/gtest.h>

#include <string>

#include "core/brew.h"

namespace {

__attribute__((noinline)) int addmul(int a, int b) { return a * 7 + b; }
typedef int (*addmul_t)(int, int);

TEST(CApiV1, Figure2BasicUsageLegacySpelling) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setret(conf, BREW_RET_INT);
  void* newfunc = brew_rewrite(conf, (void*)addmul, (uint64_t)1, (uint64_t)2);
  ASSERT_NE(newfunc, nullptr) << brew_lastError(conf);
  EXPECT_EQ(((addmul_t)newfunc)(1, 2), addmul(1, 2));
  EXPECT_EQ(((addmul_t)newfunc)(-3, 10), addmul(-3, 10));
  brew_release(newfunc);
  brew_freeConf(conf);
}

TEST(CApiV1, GetstatsReportsLastRewrite) {
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  addmul_t fn =
      (addmul_t)brew_rewrite(conf, (void*)addmul, (uint64_t)42, (uint64_t)0);
  ASSERT_NE(fn, nullptr) << brew_lastError(conf);
  EXPECT_EQ(fn(1, 2), 42 * 7 + 2);
  brew_stats stats;
  brew_getstats(conf, &stats);
  EXPECT_GT(stats.code_bytes, 0u);
  EXPECT_GT(stats.traced_instructions, 0u);
  brew_release((void*)fn);
  brew_freeConf(conf);
}

TEST(CApiV1, NullSafety) {
  EXPECT_EQ(brew_rewrite(nullptr, (void*)addmul), nullptr);
  brew_conf* conf = brew_initConf();
  EXPECT_EQ(brew_rewrite(conf, nullptr), nullptr);
  brew_release(nullptr);  // no-op
  brew_stats stats;
  brew_getstats(nullptr, &stats);  // no-op
  brew_getstats(conf, nullptr);    // no-op
  brew_freeConf(conf);
}

TEST(CApiV1, LegacyShimSharesCacheAndHandles) {
  brew_cache_reset();
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);

  // v1 and v2 spellings of the same request share one cache entry, and the
  // doubly handed-out v1 pointer survives its first release.
  void* v1 = brew_rewrite(conf, (void*)addmul, (uint64_t)11, (uint64_t)0);
  brew_func* v2 = brew_rewrite2(conf, (void*)addmul, (uint64_t)11, (uint64_t)0);
  void* v1again = brew_rewrite(conf, (void*)addmul, (uint64_t)11, (uint64_t)0);
  ASSERT_NE(v1, nullptr) << brew_lastError(conf);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v1, brew_func_entry(v2));
  EXPECT_EQ(v1, v1again);

  brew_cache_stats cache;
  brew_getcachestats(&cache);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, 2u);

  brew_release(v1);
  EXPECT_EQ(((addmul_t)v1again)(1, 2), 11 * 7 + 2);  // one claim left
  brew_release(v1again);
  EXPECT_EQ(((addmul_t)brew_func_entry(v2))(1, 2), 11 * 7 + 2);
  brew_release_h(v2);
  brew_freeConf(conf);
}

}  // namespace
