// Whole-pipeline differential fuzzing: random straight-line-with-branches
// programs are rewritten under random specialization configs, and the
// rewritten function must agree with the original on every input (with
// baked values substituted for the known parameters). This exercises the
// decoder, tracer (elision, materialization, folding, branch capture),
// passes, emitter and encoder together.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/rewriter.hpp"
#include "core/spec_manager.hpp"
#include "isa/printer.hpp"
#include "jit/assembler.hpp"
#include "support/prng.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::Instruction;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

// Generates a random two-argument integer function:
//   working registers seeded from the two args, a body of random ALU ops
//   sprinkled with compare+cmov/setcc and an optional forward branch,
//   everything mixed into rax at the end.
ExecMemory buildRandomFunction(Prng& rng) {
  jit::Assembler as;
  const Reg pool[] = {Reg::rax, Reg::rcx, Reg::rdx, Reg::rsi, Reg::rdi,
                      Reg::r8, Reg::r9, Reg::r10};

  as.movRegReg(Reg::rax, Reg::rdi);
  as.movRegReg(Reg::rcx, Reg::rsi);
  as.movRegReg(Reg::rdx, Reg::rdi);
  as.movRegReg(Reg::r8, Reg::rsi);
  as.movRegReg(Reg::r9, Reg::rdi);
  as.movRegReg(Reg::r10, Reg::rsi);

  jit::Label skip = as.newLabel();
  bool branchOpen = false;

  const int len = 6 + static_cast<int>(rng.below(20));
  for (int i = 0; i < len; ++i) {
    const Reg dst = pool[rng.below(std::size(pool))];
    const Reg src = pool[rng.below(std::size(pool))];
    const uint8_t w = rng.chance(0.5) ? 8 : 4;
    switch (rng.below(10)) {
      case 0: as.aluRegReg(Mnemonic::Add, dst, src, w); break;
      case 1: as.aluRegReg(Mnemonic::Sub, dst, src, w); break;
      case 2: as.aluRegReg(Mnemonic::Xor, dst, src, w); break;
      case 3: as.aluRegReg(Mnemonic::Or, dst, src, w); break;
      case 4:
        as.aluRegImm(Mnemonic::And, dst,
                     static_cast<int64_t>(rng.next() & 0xFFFFF), w);
        break;
      case 5:
        as.emit(makeInstr(Mnemonic::Imul, w, Operand::makeReg(dst),
                          Operand::makeReg(src)));
        break;
      case 6:
        as.emit(makeInstr(Mnemonic::Shl, w, Operand::makeReg(dst),
                          Operand::makeImm(rng.below(w * 8))));
        break;
      case 7: {  // compare + cmov
        as.aluRegReg(Mnemonic::Cmp, dst, src, w);
        Instruction cmov = makeInstr(Mnemonic::Cmovcc, 8,
                                     Operand::makeReg(dst),
                                     Operand::makeReg(src));
        cmov.cond = static_cast<Cond>(rng.below(16));
        as.emit(cmov);
        break;
      }
      case 8: {  // compare + setcc into a full register
        as.aluRegReg(Mnemonic::Cmp, dst, src, w);
        as.movRegImm(dst, 0, 4);  // zero so the byte write is total
        Instruction setcc = makeInstr(Mnemonic::Setcc, 1,
                                      Operand::makeReg(dst));
        setcc.cond = static_cast<Cond>(rng.below(16));
        as.emit(setcc);
        break;
      }
      default: {  // one forward branch region per function
        if (!branchOpen && rng.chance(0.5)) {
          as.aluRegReg(Mnemonic::Cmp, dst, src, 8);
          as.jcc(static_cast<Cond>(rng.below(16)), skip);
          branchOpen = true;
        } else {
          as.emit(makeInstr(Mnemonic::Neg, w, Operand::makeReg(dst)));
        }
        break;
      }
    }
  }
  if (branchOpen) as.bind(skip);
  for (Reg r : {Reg::rcx, Reg::rdx, Reg::r8, Reg::r9, Reg::r10})
    as.aluRegReg(Mnemonic::Add, Reg::rax, r);
  as.ret();

  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << mem.error().message();
  return std::move(*mem);
}

using fn_t = uint64_t (*)(uint64_t, uint64_t);

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzz, RewrittenAgreesWithOriginal) {
  Prng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    ExecMemory code = buildRandomFunction(rng);
    auto original = code.entry<fn_t>();

    // Random specialization config: each parameter independently known.
    const bool know0 = rng.chance(0.4);
    const bool know1 = rng.chance(0.4);
    const uint64_t baked0 = rng.next() & 0xFFFFFFFF;
    const uint64_t baked1 = rng.next() & 0xFFFFFFFF;
    Config config;
    if (know0) config.setParamKnown(0);
    if (know1) config.setParamKnown(1);
    if (rng.chance(0.3))
      config.setFunctionOptions(code.data(),
                                FunctionOptions{.forceUnknownResults = true});
    config.setReturnKind(ReturnKind::Int);

    Rewriter rewriter{config};
    auto rewritten = rewriter.rewrite(code.data(), baked0, baked1);
    ASSERT_TRUE(rewritten.ok())
        << "seed " << GetParam() << " trial " << trial << ": "
        << rewritten.error().message() << "\n"
        << isa::disassemble({code.data(), code.size()},
                            reinterpret_cast<uint64_t>(code.data()));
    auto specialized = rewritten->as<fn_t>();

    for (int call = 0; call < 10; ++call) {
      const uint64_t a = know0 ? baked0 : rng.next();
      const uint64_t b = know1 ? baked1 : rng.next();
      const uint64_t want = original(a, b);
      const uint64_t got = specialized(a, b);
      ASSERT_EQ(got, want)
          << "seed " << GetParam() << " trial " << trial << " call " << call
          << " know=(" << know0 << "," << know1 << ") a=" << a << " b=" << b
          << "\noriginal:\n"
          << isa::disassemble({code.data(), code.size()},
                              reinterpret_cast<uint64_t>(code.data()))
          << "\nrewritten:\n"
          << rewritten->disassembly();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006, 7007,
                                           8008, 9009, 10010, 11011, 12012,
                                           13013, 14014, 15015, 16016));

// SSE variant: random scalar-double dataflow.
class SseDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SseDifferentialFuzz, RewrittenAgreesWithOriginal) {
  Prng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    jit::Assembler as;
    const Reg pool[] = {Reg::xmm0, Reg::xmm1, Reg::xmm2, Reg::xmm3,
                        Reg::xmm4};
    // xmm0, xmm1 are the arguments; seed the others.
    as.emit(makeInstr(Mnemonic::Movapd, 16, Operand::makeReg(Reg::xmm2),
                      Operand::makeReg(Reg::xmm0)));
    as.emit(makeInstr(Mnemonic::Movapd, 16, Operand::makeReg(Reg::xmm3),
                      Operand::makeReg(Reg::xmm1)));
    as.emit(makeInstr(Mnemonic::Movapd, 16, Operand::makeReg(Reg::xmm4),
                      Operand::makeReg(Reg::xmm0)));
    const int len = 4 + static_cast<int>(rng.below(14));
    for (int i = 0; i < len; ++i) {
      const Reg dst = pool[rng.below(std::size(pool))];
      const Reg src = pool[rng.below(std::size(pool))];
      switch (rng.below(5)) {
        case 0:
          as.emit(makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(dst),
                            Operand::makeReg(src)));
          break;
        case 1:
          as.emit(makeInstr(Mnemonic::Subsd, 8, Operand::makeReg(dst),
                            Operand::makeReg(src)));
          break;
        case 2:
          as.emit(makeInstr(Mnemonic::Mulsd, 8, Operand::makeReg(dst),
                            Operand::makeReg(src)));
          break;
        case 3:
          as.emit(makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(dst),
                            Operand::makeReg(src)));
          break;
        default:
          as.emit(makeInstr(Mnemonic::Unpcklpd, 16, Operand::makeReg(dst),
                            Operand::makeReg(src)));
          break;
      }
    }
    // Collapse to xmm0.
    for (Reg r : {Reg::xmm1, Reg::xmm2, Reg::xmm3, Reg::xmm4})
      as.emit(makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm0),
                        Operand::makeReg(r)));
    as.ret();
    auto mem = as.finalizeExecutable();
    ASSERT_TRUE(mem.ok());
    using g_t = double (*)(double, double);
    auto original = mem->entry<g_t>();

    const bool know0 = rng.chance(0.4);
    const double baked0 = rng.uniform() * 8 - 4;
    Config config;
    if (know0) config.setParamKnown(0, /*isFloat=*/true);
    config.setParamFloat(1);
    config.setReturnKind(ReturnKind::Float);
    Rewriter rewriter{config};
    const ArgValue args[] = {ArgValue::fromDouble(baked0),
                             ArgValue::fromDouble(0.0)};
    auto rewritten = rewriter.rewrite(mem->data(), args);
    ASSERT_TRUE(rewritten.ok())
        << "seed " << GetParam() << " trial " << trial << ": "
        << rewritten.error().message();
    auto specialized = rewritten->as<g_t>();
    for (int call = 0; call < 8; ++call) {
      const double a = know0 ? baked0 : rng.uniform() * 8 - 4;
      const double b = rng.uniform() * 8 - 4;
      ASSERT_EQ(original(a, b), specialized(a, b))
          << "seed " << GetParam() << " trial " << trial << " a=" << a
          << " b=" << b << "\nrewritten:\n"
          << rewritten->disassembly();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SseDifferentialFuzz,
                         ::testing::Values(21, 42, 63, 84, 105, 126, 147, 168, 189,
                                           210, 231, 252));

// Memory variant: random loads/stores through a scratch buffer (rdi) and
// loads from a constant table (rsi, declared KnownPtr) — stresses address
// folding, pool folding, shadow-independent memory capture.
class MemDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemDifferentialFuzz, RewrittenAgreesWithOriginal) {
  Prng rng(GetParam());
  alignas(16) static int64_t table[16];
  for (int i = 0; i < 16; ++i)
    table[i] = static_cast<int64_t>(rng.next() & 0xFFFF);

  for (int trial = 0; trial < 25; ++trial) {
    jit::Assembler as;
    const Reg pool[] = {Reg::rax, Reg::rcx, Reg::rdx, Reg::r8, Reg::r9};
    as.movRegImm(Reg::rax, 1);
    as.movRegImm(Reg::rcx, 2);
    as.movRegImm(Reg::rdx, 3);
    as.movRegImm(Reg::r8, 4);
    as.movRegImm(Reg::r9, 5);
    const int len = 6 + static_cast<int>(rng.below(16));
    for (int i = 0; i < len; ++i) {
      const Reg reg = pool[rng.below(std::size(pool))];
      const int32_t slot = static_cast<int32_t>(rng.below(8)) * 8;
      switch (rng.below(5)) {
        case 0:  // load from scratch
          as.movRegMem(reg, MemOperand{.base = Reg::rdi, .disp = slot}, 8);
          break;
        case 1:  // store to scratch
          as.movMemReg(MemOperand{.base = Reg::rdi, .disp = slot}, reg, 8);
          break;
        case 2:  // load from the constant table
          as.movRegMem(reg, MemOperand{.base = Reg::rsi, .disp = slot}, 8);
          break;
        case 3:  // rmw on scratch
          as.emit(makeInstr(Mnemonic::Add, 8,
                            Operand::makeMem(MemOperand{.base = Reg::rdi,
                                                        .disp = slot}),
                            Operand::makeReg(reg)));
          break;
        default:
          as.aluRegReg(Mnemonic::Add, reg,
                       pool[rng.below(std::size(pool))], 8);
          break;
      }
    }
    for (Reg r : {Reg::rcx, Reg::rdx, Reg::r8, Reg::r9})
      as.aluRegReg(Mnemonic::Add, Reg::rax, r);
    as.ret();
    auto mem = as.finalizeExecutable();
    ASSERT_TRUE(mem.ok());
    using m_t = uint64_t (*)(int64_t*, const int64_t*);
    auto original = mem->entry<m_t>();

    Config config;
    config.setParamKnownPtr(1, sizeof table);  // the table is constant
    config.setReturnKind(ReturnKind::Int);
    Rewriter rewriter{config};
    auto rewritten = rewriter.rewrite(mem->data(), nullptr, table);
    ASSERT_TRUE(rewritten.ok())
        << "seed " << GetParam() << " trial " << trial << ": "
        << rewritten.error().message();
    auto specialized = rewritten->as<m_t>();

    for (int call = 0; call < 6; ++call) {
      alignas(16) int64_t scratch1[8], scratch2[8];
      for (int i = 0; i < 8; ++i)
        scratch1[i] = scratch2[i] = static_cast<int64_t>(rng.next() & 0xFFFF);
      const uint64_t want = original(scratch1, table);
      const uint64_t got = specialized(scratch2, table);
      ASSERT_EQ(got, want) << "seed " << GetParam() << " trial " << trial;
      for (int i = 0; i < 8; ++i)
        ASSERT_EQ(scratch1[i], scratch2[i])
            << "memory side effects differ at slot " << i << " (seed "
            << GetParam() << " trial " << trial << ")\n"
            << rewritten->dumpCaptured();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemDifferentialFuzz,
                         ::testing::Values(7, 14, 28, 56, 112, 224, 448, 896));

// Concurrency variant (`concurrency` ctest label, TSan via
// scripts/check_telemetry.sh): several threads fuzz the SAME seeds through
// one sharded SpecManager. Specialization must be deterministic — every
// thread gets the same captured IR as a single-shard reference rewrite, no
// matter which thread traced first or which shard held the entry — and
// per-key single-flight must hold across shards (one miss per subject per
// round, all threads sharing one entry pointer).
TEST(ConcurrentDifferentialFuzz, SameSeedsSameCapturedBytesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 2;
  const uint64_t seeds[] = {31, 62, 93, 124, 155, 186};
  constexpr size_t kSubjects = std::size(seeds);

  struct Subject {
    ExecMemory code;
    Config config;
    uint64_t baked0 = 0;
    uint64_t baked1 = 0;
    bool know0 = false;
    bool know1 = false;
    std::string refCaptured;
  };

  // Reference captures from a single-shard (pre-sharding-behavior) manager.
  std::vector<Subject> subjects;
  SpecManager refManager{
      SpecManager::Options{.workers = 1, .cacheShards = 1}};
  for (uint64_t seed : seeds) {
    Prng rng(seed);
    Subject s;
    s.code = buildRandomFunction(rng);
    s.know0 = rng.chance(0.5);
    s.know1 = rng.chance(0.5);
    s.baked0 = rng.next() & 0xFFFFFFFF;
    s.baked1 = rng.next() & 0xFFFFFFFF;
    if (s.know0) s.config.setParamKnown(0);
    if (s.know1) s.config.setParamKnown(1);
    s.config.setReturnKind(ReturnKind::Int);
    Rewriter ref{s.config, refManager};
    auto rewritten = ref.rewrite(s.code.data(), s.baked0, s.baked1);
    ASSERT_TRUE(rewritten.ok())
        << "seed " << seed << ": " << rewritten.error().message();
    s.refCaptured = rewritten->dumpCaptured();
    subjects.push_back(std::move(s));
  }

  SpecManager manager{SpecManager::Options{.workers = 2, .cacheShards = 16}};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::vector<void*>> entries(
        kThreads, std::vector<void*>(kSubjects, nullptr));
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, round] {
        Prng rng(1000 + static_cast<uint64_t>(round) * 100 +
                 static_cast<uint64_t>(t));
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        for (size_t j = 0; j < kSubjects; ++j) {
          // Distinct visiting orders so threads collide on different keys.
          const size_t idx = (j + static_cast<size_t>(t)) % kSubjects;
          Subject& s = subjects[idx];
          Rewriter rewriter{s.config, manager};
          auto rewritten =
              rewriter.rewrite(s.code.data(), s.baked0, s.baked1);
          ASSERT_TRUE(rewritten.ok())
              << "seed " << seeds[idx] << " thread " << t << " round "
              << round << ": " << rewritten.error().message();
          entries[static_cast<size_t>(t)][idx] = rewritten->entry();
          EXPECT_EQ(rewritten->dumpCaptured(), s.refCaptured)
              << "seed " << seeds[idx] << " thread " << t << " round "
              << round << ": captured IR depends on thread/shard";
          auto original = s.code.entry<fn_t>();
          auto specialized = rewritten->as<fn_t>();
          for (int call = 0; call < 4; ++call) {
            const uint64_t a = s.know0 ? s.baked0 : rng.next();
            const uint64_t b = s.know1 ? s.baked1 : rng.next();
            ASSERT_EQ(specialized(a, b), original(a, b))
                << "seed " << seeds[idx] << " thread " << t << " round "
                << round << " a=" << a << " b=" << b;
          }
        }
      });
    }
    while (ready.load() != kThreads) std::this_thread::yield();
    go.store(true);
    for (std::thread& thread : threads) thread.join();

    // Single-flight across shards: one code object per subject per round.
    for (int t = 1; t < kThreads; ++t)
      for (size_t idx = 0; idx < kSubjects; ++idx)
        EXPECT_EQ(entries[0][idx], entries[static_cast<size_t>(t)][idx])
            << "subject " << idx << " round " << round;

    // Force the next round to re-trace everything from scratch.
    for (Subject& s : subjects)
      manager.cache().invalidateTarget(s.code.data(), s.code.size());
  }

  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kRounds) * kSubjects);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kRounds) * kThreads * kSubjects);
  EXPECT_EQ(stats.invalidations, static_cast<uint64_t>(kRounds) * kSubjects);
}

}  // namespace
}  // namespace brew
