// Profile-guided multi-version dispatch (core/dispatch.hpp): predicate-
// keyed variant lookup, inline-cache promotion, decay/hysteresis under a
// shifting key distribution, epoch bumps, and a multi-thread hammer (the
// binary carries the `concurrency` label so the TSan sweep runs it).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/dispatch.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Mnemonic;
using isa::Reg;

// f(mode, x) = mode * k + x, built deterministically.
ExecMemory buildKernel(int64_t k) {
  jit::Assembler as;
  as.emit(isa::makeInstr(Mnemonic::Imul, 8, isa::Operand::makeReg(Reg::rax),
                         isa::Operand::makeReg(Reg::rdi),
                         isa::Operand::makeImm(k)));
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  return std::move(*mem);
}

using kernel_t = int64_t (*)(int64_t, int64_t);

std::vector<ArgValue> protoArgs() {
  return {ArgValue::fromInt(0), ArgValue::fromInt(0)};
}

DispatchOptions fastOptions() {
  DispatchOptions opt;
  opt.maxVariants = 2;
  opt.inlineWays = 2;
  opt.sampleCalls = 8;
  opt.promoteThreshold = 4;
  opt.decayInterval = 32;
  opt.demoteMargin = 2;
  return opt;
}

TEST(Dispatch, PredicateKeyedLookupStaysCorrect) {
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory kernel = buildKernel(1000);
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{},
                      fastOptions());
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();

  // Two hot keys: every call computes correctly whether it runs the
  // original (sampling), the miss path, or a specialized variant.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(fn(3, i), 3000 + i) << "call " << i;
    ASSERT_EQ(fn(8, i), 8000 + i) << "call " << i;
  }
  EXPECT_EQ(d.variantCount(), 2u);
  for (const VariantInfo& v : d.variants()) {
    EXPECT_TRUE(v.key == 3u || v.key == 8u);
    EXPECT_NE(v.entry, nullptr);
    EXPECT_GT(v.codeBytes, 0u);
    EXPECT_EQ(v.epoch, 0u);
  }
  const DispatchStats s = d.stats();
  EXPECT_EQ(s.promotions, 2u);
  EXPECT_EQ(s.variantsLive, 2u);
  EXPECT_GT(s.misses, 0u);  // the warm-up misses
}

TEST(Dispatch, MonomorphicStubFastPathBypassesResolver) {
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory kernel = buildKernel(1000);
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{},
                      fastOptions());
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();

  // Warm one key until it is promoted and inline-cached.
  for (int i = 0; i < 64; ++i) ASSERT_EQ(fn(7, i), 7000 + i);
  ASSERT_EQ(d.variantCount(), 1u);
  ASSERT_TRUE(d.variants()[0].inlineCached);

  // The monomorphic fast path never reaches resolve(): resolver counters
  // freeze while the stub's per-way hit counter keeps advancing.
  const DispatchStats before = d.stats();
  const uint64_t hitsBefore = d.variants()[0].hits;
  for (int i = 0; i < 50; ++i) ASSERT_EQ(fn(7, i), 7000 + i);
  const DispatchStats after = d.stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.tableHits, before.tableHits);
  EXPECT_EQ(d.variants()[0].hits, hitsBefore + 50);
}

TEST(Dispatch, HysteresisAndDecayUnderShiftingDistribution) {
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory kernel = buildKernel(1000);
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{},
                      fastOptions());  // maxVariants = 2
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();

  // Phase 1: keys 1 and 2 are hot and fill the table.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(fn(1, i), 1000 + i);
    ASSERT_EQ(fn(2, i), 2000 + i);
  }
  ASSERT_EQ(d.variantCount(), 2u);

  // Phase 2: the distribution shifts to keys 5 and 6. Decay erodes the old
  // variants' scores; the challengers take over once they clearly win —
  // and the table never exceeds its budget on the way.
  for (int i = 0; i < 400; ++i) {
    ASSERT_EQ(fn(5, i), 5000 + i);
    ASSERT_EQ(fn(6, i), 6000 + i);
    ASSERT_LE(d.variantCount(), 2u);
  }
  std::set<uint64_t> keys;
  for (const VariantInfo& v : d.variants()) keys.insert(v.key);
  EXPECT_EQ(keys, (std::set<uint64_t>{5, 6}));

  const DispatchStats shifted = d.stats();
  EXPECT_GE(shifted.demotions, 2u);  // the phase-1 variants were retired
  EXPECT_GT(shifted.decayRounds, 0u);

  // Steady state: the new hot set does not thrash.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(fn(5, i), 5000 + i);
    ASSERT_EQ(fn(6, i), 6000 + i);
  }
  EXPECT_EQ(d.stats().demotions, shifted.demotions);
}

TEST(Dispatch, EpochBumpRetiresAndRespecializes) {
  SpecManager manager{SpecManager::Options{.workers = 2}};
  ExecMemory kernel = buildKernel(1000);
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{},
                      fastOptions());
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();

  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(fn(1, i), 1000 + i);
    ASSERT_EQ(fn(2, i), 2000 + i);
  }
  ASSERT_EQ(d.variantCount(), 2u);

  // A predicate change retires every variant immediately...
  d.bumpEpoch();
  EXPECT_EQ(d.variantCount(), 0u);
  EXPECT_EQ(d.epoch(), 1u);
  EXPECT_EQ(d.stats().epochBumps, 1u);

  // ...while calls stay correct, and the previously hot keys come back as
  // the background batch completes (installed by the miss-path poller).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (d.variantCount() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_EQ(fn(1, 5), 1005);
    ASSERT_EQ(fn(2, 5), 2005);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(d.variantCount(), 2u);
  for (const VariantInfo& v : d.variants()) EXPECT_EQ(v.epoch, 1u);
}

TEST(Dispatch, AsyncSpecializationInstallsEventually) {
  SpecManager manager{SpecManager::Options{.workers = 2}};
  ExecMemory kernel = buildKernel(1000);
  DispatchOptions opt = fastOptions();
  opt.asyncSpecialize = true;
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{}, opt);
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int i = 0;
  while (d.variantCount() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_EQ(fn(9, i), 9000 + i);  // original until the worker installs
    ++i;
  }
  ASSERT_EQ(d.variantCount(), 1u);
  EXPECT_EQ(d.variants()[0].key, 9u);
  EXPECT_EQ(d.stats().promotions, 1u);
  ASSERT_EQ(fn(9, 1), 9001);
}

TEST(Dispatch, SeedHotStartsInSteadyState) {
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory kernel = buildKernel(1000);
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{},
                      fastOptions());
  ASSERT_TRUE(d.valid());

  const uint64_t hot[] = {4, 11};
  d.seedHot(hot, 500);
  EXPECT_EQ(d.variantCount(), 2u);
  EXPECT_EQ(d.stats().promotions, 2u);

  auto fn = d.as<kernel_t>();
  EXPECT_EQ(fn(4, 3), 4003);
  EXPECT_EQ(fn(11, 3), 11003);
  EXPECT_EQ(fn(2, 3), 2003);  // cold key: original, still correct
}

TEST(Dispatch, InvalidKeyParameterFallsBackToOriginal) {
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory kernel = buildKernel(1000);
  // A float-class key parameter cannot drive the integer-compare stub.
  VariantDispatcher d(manager, kernel.data(), 0,
                      {ArgValue::fromDouble(0.0), ArgValue::fromInt(0)},
                      Config{}, fastOptions());
  EXPECT_FALSE(d.valid());
  EXPECT_EQ(d.entry(), kernel.data());  // entry degrades to the original
  EXPECT_EQ(d.variantCount(), 0u);

  // Same for an out-of-range parameter index.
  VariantDispatcher d2(manager, kernel.data(), 5, protoArgs(), Config{},
                       fastOptions());
  EXPECT_FALSE(d2.valid());
  EXPECT_EQ(d2.entry(), kernel.data());
}

TEST(Dispatch, ProfileGuidedPromotionBoostsCpuHotVariant) {
  // A variant that is call-cold but CPU-hot (long-running calls) loses the
  // single inline way on call counts alone. Profiler samples absorbed as a
  // hotness prior must flip that: the sampled variant takes the way.
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory kernel = buildKernel(1000);
  DispatchOptions opt = fastOptions();
  opt.inlineWays = 1;
  opt.profileGuided = true;
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{},
                      opt);
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();

  // Key 3 is call-hot and owns the way; key 8 is promoted to a variant but
  // stays call-cold, so it cannot displace the incumbent by calls.
  for (int i = 0; i < 200; ++i) ASSERT_EQ(fn(3, i), 3000 + i);
  for (int i = 0; i < 40; ++i) ASSERT_EQ(fn(8, i), 8000 + i);
  ASSERT_EQ(d.variantCount(), 2u);

  const void* coldEntry = nullptr;
  for (const VariantInfo& v : d.variants()) {
    if (v.key == 3u) {
      EXPECT_TRUE(v.inlineCached);
    }
    if (v.key == 8u) {
      EXPECT_FALSE(v.inlineCached);
      coldEntry = v.entry;
    }
  }
  ASSERT_NE(coldEntry, nullptr);

  // The drain thread attributes CPU samples to the cold variant's code
  // region (here injected directly: same entry point the sink resolves).
  EXPECT_TRUE(d.absorbProfileSamples(coldEntry, 1000));
  EXPECT_EQ(d.stats().profileSamples, 1000u);
  for (const VariantInfo& v : d.variants()) {
    if (v.key == 8u) {
      EXPECT_TRUE(v.inlineCached) << "samples did not promote";
    }
    if (v.key == 3u) {
      EXPECT_FALSE(v.inlineCached);
    }
  }

  // A PC outside every variant is not absorbed.
  EXPECT_FALSE(d.absorbProfileSamples(&kernel, 10));
}

TEST(Dispatch, ProfileSamplesIgnoredWithoutProfileGuided) {
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory kernel = buildKernel(1000);
  DispatchOptions opt = fastOptions();
  opt.inlineWays = 1;  // profileGuided stays false
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{},
                      opt);
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();
  for (int i = 0; i < 200; ++i) ASSERT_EQ(fn(3, i), 3000 + i);
  for (int i = 0; i < 40; ++i) ASSERT_EQ(fn(8, i), 8000 + i);
  ASSERT_EQ(d.variantCount(), 2u);

  const void* coldEntry = nullptr;
  for (const VariantInfo& v : d.variants()) {
    if (v.key == 8u) coldEntry = v.entry;
  }
  ASSERT_NE(coldEntry, nullptr);

  EXPECT_FALSE(d.absorbProfileSamples(coldEntry, 1000));
  EXPECT_EQ(d.stats().profileSamples, 0u);
  for (const VariantInfo& v : d.variants()) {
    if (v.key == 8u) {
      EXPECT_FALSE(v.inlineCached);
    }
  }
}

TEST(DispatchRegistry, FindAggregateAndRankHot) {
  SpecManager manager{SpecManager::Options{.workers = 1}};
  ExecMemory hotKernel = buildKernel(1000);
  ExecMemory coldKernel = buildKernel(3);
  VariantDispatcher hot(manager, hotKernel.data(), 0, protoArgs(), Config{},
                        fastOptions());
  VariantDispatcher cold(manager, coldKernel.data(), 0, protoArgs(), Config{},
                         fastOptions());
  ASSERT_TRUE(hot.valid());
  ASSERT_TRUE(cold.valid());

  auto hotFn = hot.as<kernel_t>();
  auto coldFn = cold.as<kernel_t>();
  for (int i = 0; i < 300; ++i) ASSERT_EQ(hotFn(2, i), 2000 + i);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(coldFn(2, i), 6 + i);

  EXPECT_EQ(VariantDispatcher::find(hotKernel.data()), &hot);
  EXPECT_EQ(VariantDispatcher::find(&hotFn), nullptr);

  size_t functions = 0;
  const DispatchStats total = VariantDispatcher::aggregate(&functions);
  EXPECT_EQ(functions, 2u);
  EXPECT_GE(total.variantsLive, 1u);
  EXPECT_GT(total.variantHits + total.tableHits + total.misses, 0u);

  // The online hot ranking puts the busier subject first.
  const auto ranked = VariantDispatcher::rankHot();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, hotKernel.data());
  EXPECT_EQ(ranked[1].first, coldKernel.data());
  EXPECT_GT(ranked[0].second, ranked[1].second);

  bool saw = false;
  EXPECT_TRUE(VariantDispatcher::withDispatcher(
      hotKernel.data(), [&](VariantDispatcher& d) {
        saw = true;
        EXPECT_EQ(d.subject(), hotKernel.data());
      }));
  EXPECT_TRUE(saw);
  EXPECT_FALSE(VariantDispatcher::withDispatcher(
      &functions, [](VariantDispatcher&) {}));
}

// Multi-thread hammer: concurrent callers across a churning key set while
// another thread bumps the epoch. Every call must stay correct; the TSan
// build (`ctest -L concurrency` in build-tsan/) must stay silent.
TEST(DispatchHammer, ConcurrentMixedKeysWithEpochBumps) {
  SpecManager manager{SpecManager::Options{.workers = 2}};
  ExecMemory kernel = buildKernel(1000);
  DispatchOptions opt;
  opt.maxVariants = 4;
  opt.inlineWays = 4;
  opt.sampleCalls = 16;
  opt.promoteThreshold = 4;
  opt.decayInterval = 64;
  VariantDispatcher d(manager, kernel.data(), 0, protoArgs(), Config{}, opt);
  ASSERT_TRUE(d.valid());
  auto fn = d.as<kernel_t>();

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 3000;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const int64_t mode = (i * 7 + t) % 6;
        if (fn(mode, i) != mode * 1000 + i)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int bump = 0; bump < 3; ++bump) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    d.bumpEpoch();
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_LE(d.variantCount(), 4u);
  const DispatchStats s = d.stats();
  EXPECT_EQ(s.epochBumps, 3u);
  EXPECT_GT(s.tableHits + s.misses, 0u);
}

}  // namespace
}  // namespace brew
