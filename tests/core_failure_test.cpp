// Failure-mode tests (§III-G): "at all times, it is possible that we reach
// a situation that cannot be handled ... It simply means that the user of
// the rewriter API has to use the original version." Every failure must be
// a typed error — never a crash, never corrupted output.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/brew.h"
#include "core/rewriter.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using jit::Assembler;

ExecMemory buildOrDie(Assembler& assembler) {
  auto mem = assembler.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << (mem.ok() ? "" : mem.error().message());
  return std::move(*mem);
}

ErrorCode rewriteError(const void* fn, Config config = Config{}) {
  Rewriter rewriter{std::move(config)};
  auto rewritten = rewriter.rewrite(fn, 0, 0);
  EXPECT_FALSE(rewritten.ok());
  return rewritten.ok() ? ErrorCode::Ok : rewritten.error().code;
}

TEST(Failure, UndecodableInstruction) {
  static const uint8_t code[] = {0x0f, 0x31, 0xc3};  // rdtsc; ret
  EXPECT_EQ(rewriteError(code), ErrorCode::UndecodableInstruction);
}

TEST(Failure, LockPrefix) {
  // lock add [rdi], eax
  static const uint8_t code[] = {0xf0, 0x01, 0x07, 0xc3};
  EXPECT_EQ(rewriteError(code), ErrorCode::UndecodableInstruction);
}

TEST(Failure, SyscallInstruction) {
  static const uint8_t code[] = {0x0f, 0x05, 0xc3};  // syscall
  EXPECT_EQ(rewriteError(code), ErrorCode::UndecodableInstruction);
}

TEST(Failure, IndirectUnknownJump) {
  Assembler as;
  as.emit(makeInstr(Mnemonic::JmpInd, 8, Operand::makeReg(Reg::rdi)));
  ExecMemory fn = buildOrDie(as);
  EXPECT_EQ(rewriteError(fn.data()), ErrorCode::IndirectUnknownJump);
}

TEST(Failure, UnknownStackPointerOnMovRsp) {
  Assembler as;
  as.movRegReg(Reg::rsp, Reg::rdi);  // rsp <- unknown value
  as.ret();
  ExecMemory fn = buildOrDie(as);
  EXPECT_EQ(rewriteError(fn.data()), ErrorCode::UnknownStackPointer);
}

TEST(Failure, LeaveWithoutFramePointer) {
  Assembler as;
  as.emit(makeInstr(Mnemonic::Leave, 8));  // rbp was never set up
  as.ret();
  ExecMemory fn = buildOrDie(as);
  EXPECT_EQ(rewriteError(fn.data()), ErrorCode::UnknownStackPointer);
}

TEST(Failure, WriteToDeclaredConstantMemory) {
  static int64_t data[2] = {1, 2};
  Assembler as;
  as.movMemReg(MemOperand{.base = Reg::rdi}, Reg::rsi, 8);
  as.ret();
  ExecMemory fn = buildOrDie(as);
  Config config;
  config.setParamKnownPtr(0, sizeof data);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), data, 1);
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::WriteToKnownMemory);
  // The constant data is untouched by the failed attempt.
  EXPECT_EQ(data[0], 1);
}

TEST(Failure, RetWithImmediateUnsupported) {
  Assembler as;
  as.emit(makeInstr(Mnemonic::Ret, 8, Operand::makeImm(16)));
  ExecMemory fn = buildOrDie(as);
  EXPECT_EQ(rewriteError(fn.data()), ErrorCode::UnsupportedInstruction);
}

TEST(Failure, NullFunction) {
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(nullptr);
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::InvalidArgument);
}

TEST(Failure, ErrorCarriesFaultAddress) {
  static const uint8_t code[] = {0x90, 0x90, 0x0f, 0x31, 0xc3};  // nops;rdtsc
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(code);
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().address,
            reinterpret_cast<uint64_t>(code) + 2);
  EXPECT_NE(rewritten.error().message().find("0x"), std::string::npos);
}

TEST(Failure, ErrorMessagesAreDistinct) {
  // Every error code names itself.
  for (int c = 1; c <= static_cast<int>(ErrorCode::InvalidConfiguration);
       ++c) {
    const char* name = errorCodeName(static_cast<ErrorCode>(c));
    EXPECT_NE(std::string(name), "UnknownError") << c;
  }
}

TEST(Failure, OriginalStillWorksAfterFailedRewrite) {
  // The whole §VIII robustness story: failure leaves the world unchanged.
  Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.emitBytes(std::vector<uint8_t>{0x0f, 0x31});  // rdtsc - undecodable
  as.ret();
  ExecMemory fn = buildOrDie(as);
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 1);
  ASSERT_FALSE(rewritten.ok());
  // Original executes fine (rdtsc clobbers rax; just check no crash).
  fn.entry<uint64_t (*)(uint64_t)>()(5);
}

TEST(Failure, LastErrorClearsAfterSuccess) {
  // A success on the same conf must not leave the previous failure's
  // message dangling (the stale-error gap this suite used to miss).
  static const uint8_t bogus[] = {0x0f, 0xa2, 0xc3};  // cpuid; ret
  Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.ret();
  ExecMemory good = buildOrDie(as);

  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 0);
  EXPECT_EQ(brew_rewrite2(conf, bogus), nullptr);
  EXPECT_NE(std::string(brew_lastError(conf)), "");

  brew_func* h = brew_rewrite2(conf, good.data());
  ASSERT_NE(h, nullptr);
  EXPECT_STREQ(brew_lastError(conf), "");
  brew_release_h(h);
  brew_freeConf(conf);
}

TEST(Failure, LastErrorIsThreadLocal) {
  static const uint8_t bogus[] = {0x0f, 0xa2, 0xc3};  // cpuid; ret
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 0);

  std::string workerSaw;
  std::thread worker([&] {
    EXPECT_EQ(brew_rewrite2(conf, bogus), nullptr);
    workerSaw = brew_lastError(conf);
  });
  worker.join();

  EXPECT_NE(workerSaw.find("Undecodable"), std::string::npos);
  // The failure happened on the worker; this thread's slot is untouched.
  EXPECT_STREQ(brew_lastError(conf), "");
  EXPECT_STREQ(brew_lastError(nullptr), "null conf");
  brew_freeConf(conf);
}

TEST(Failure, FlagsOfElidedCompareNotConsumable) {
  // A compare folds away (both inputs known); an instruction that would
  // CONSUME those flags at runtime cannot be captured soundly. Build:
  // known cmp, then cmov with *unknown* data so the cmov must be captured.
  Assembler as;
  as.movRegImm(Reg::rax, 1);
  as.movRegImm(Reg::rcx, 2);
  as.aluRegReg(Mnemonic::Cmp, Reg::rax, Reg::rcx);  // folds: flags stale
  // Make the flags "needed unknown": force the policy off for resolution
  // is the default — with known flags the cmov resolves instead. So this
  // program actually REWRITES fine; assert exactly that (the sound path
  // is resolution, not consumption).
  isa::Instruction cmov = makeInstr(Mnemonic::Cmovcc, 8,
                                    Operand::makeReg(Reg::rax),
                                    Operand::makeReg(Reg::rdi));
  cmov.cond = Cond::L;
  as.emit(cmov);
  as.ret();
  ExecMemory fn = buildOrDie(as);
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 77);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t)>()(77), 77);  // 1<2: taken
}

}  // namespace
}  // namespace brew
