// Guarded dispatch (§III-D): profile-style specialization with a runtime
// value check in front of the specialized variants.
#include <gtest/gtest.h>

#include "core/guard.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Mnemonic;
using isa::Reg;

int64_t g_originalCalls = 0;

__attribute__((noinline)) int64_t kernel(int64_t mode, int64_t x) {
  ++g_originalCalls;  // lets tests observe fallback dispatches
  switch (mode) {
    case 1: return x * 3;
    case 2: return x + 100;
    default: return -x;
  }
}
using kernel_t = int64_t (*)(int64_t, int64_t);

TEST(Guard, DispatchesToVariants) {
  // The kernel's counter update would be specialized away only if the
  // counter address were declared constant — it is not, so the variants
  // still bump it. Use a pure assembler kernel instead for exactness.
  jit::Assembler as;
  // f(mode, x) = mode * 1000 + x
  as.emit(isa::makeInstr(Mnemonic::Imul, 8, isa::Operand::makeReg(Reg::rax),
                         isa::Operand::makeReg(Reg::rdi),
                         isa::Operand::makeImm(1000)));
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  Rewriter rewriter{Config{}};
  const ArgValue args[] = {ArgValue::fromInt(0), ArgValue::fromInt(0)};
  const uint64_t guards[] = {1, 2, 7};
  auto guarded = rewriteGuarded(rewriter, mem->data(), args,
                                /*paramIndex=*/0, guards);
  ASSERT_TRUE(guarded.ok()) << guarded.error().message();
  EXPECT_EQ(guarded->variants.size(), 3u);

  auto fn = guarded->as<kernel_t>();
  // Guarded values dispatch to specialized variants...
  EXPECT_EQ(fn(1, 5), 1005);
  EXPECT_EQ(fn(2, 5), 2005);
  EXPECT_EQ(fn(7, 5), 7005);
  // ...unguarded values reach the original code.
  EXPECT_EQ(fn(3, 5), 3005);
  EXPECT_EQ(fn(-4, 5), -3995);
}

TEST(Guard, FallbackToOriginalObserved) {
  Rewriter rewriter{Config{}};
  const ArgValue args[] = {ArgValue::fromInt(0), ArgValue::fromInt(0)};
  const uint64_t guards[] = {1};
  auto guarded = rewriteGuarded(rewriter, reinterpret_cast<void*>(&kernel),
                                args, 0, guards);
  ASSERT_TRUE(guarded.ok()) << guarded.error().message();
  auto fn = guarded->as<kernel_t>();

  // mode 2 is unguarded: must go through the original (counter bumps).
  g_originalCalls = 0;
  EXPECT_EQ(fn(2, 5), 105);
  EXPECT_EQ(g_originalCalls, 1);
  EXPECT_EQ(fn(9, 5), -5);
  EXPECT_EQ(g_originalCalls, 2);
}

TEST(Guard, LargeGuardValues) {
  jit::Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  const GuardCase cases[] = {
      {0x123456789ABCDEFull, mem->data()},
  };
  auto dispatch = GuardedDispatch::build(mem->data(), 0, cases);
  ASSERT_TRUE(dispatch.ok()) << dispatch.error().message();
  auto fn = dispatch->as<uint64_t (*)(uint64_t)>();
  EXPECT_EQ(fn(0x123456789ABCDEFull), 0x123456789ABCDEFull);
  EXPECT_EQ(fn(42), 42u);  // falls through to the (identity) original
}

TEST(Guard, SecondIntegerParameter) {
  jit::Assembler as;
  // f(a, b) = a - b
  as.movRegReg(Reg::rax, Reg::rdi);
  as.aluRegReg(Mnemonic::Sub, Reg::rax, Reg::rsi);
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  Rewriter rewriter{Config{}};
  const ArgValue args[] = {ArgValue::fromInt(0), ArgValue::fromInt(0)};
  const uint64_t guards[] = {10};
  auto guarded = rewriteGuarded(rewriter, mem->data(), args, 1, guards);
  ASSERT_TRUE(guarded.ok()) << guarded.error().message();
  auto fn = guarded->as<int64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(fn(50, 10), 40);   // specialized (b baked as 10)
  EXPECT_EQ(fn(50, 20), 30);   // original
}

TEST(Guard, InvalidParameterRejected) {
  Rewriter rewriter{Config{}};
  const ArgValue args[] = {ArgValue::fromDouble(1.0)};
  const uint64_t guards[] = {1};
  auto guarded = rewriteGuarded(rewriter, reinterpret_cast<void*>(&kernel),
                                args, 0, guards);
  ASSERT_FALSE(guarded.ok());
  EXPECT_EQ(guarded.error().code, ErrorCode::InvalidArgument);
}

}  // namespace
}  // namespace brew
