// Instrumentation injection unit tests (§III-D): handler call counts,
// argument correctness, state transparency and nesting with other rewriter
// features.
#include <gtest/gtest.h>

#include <vector>

#include "core/rewriter.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using jit::Assembler;

struct Trace {
  std::vector<uint64_t> entries;
  std::vector<uint64_t> exits;
  std::vector<uint64_t> loads;
  std::vector<uint64_t> stores;
};
Trace g_trace;

void onEntry(uint64_t a) { g_trace.entries.push_back(a); }
void onExit(uint64_t a) { g_trace.exits.push_back(a); }
void onLoad(uint64_t a) { g_trace.loads.push_back(a); }
void onStore(uint64_t a) { g_trace.stores.push_back(a); }

ExecMemory buildOrDie(Assembler& assembler) {
  auto mem = assembler.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << (mem.ok() ? "" : mem.error().message());
  return std::move(*mem);
}

TEST(Injection, EntryExitFireOncePerCall) {
  Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.ret();
  ExecMemory fn = buildOrDie(as);

  Config config;
  config.injection().onEntry = &onEntry;
  config.injection().onExit = &onExit;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 0);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto identity = rewritten->as<uint64_t (*)(uint64_t)>();

  g_trace = {};
  EXPECT_EQ(identity(41), 41u);
  EXPECT_EQ(identity(42), 42u);
  ASSERT_EQ(g_trace.entries.size(), 2u);
  ASSERT_EQ(g_trace.exits.size(), 2u);
  // Handlers receive the guest (original) function address.
  EXPECT_EQ(g_trace.entries[0], reinterpret_cast<uint64_t>(fn.data()));
}

TEST(Injection, LoadAndStoreAddressesReported) {
  Assembler as;
  const uint32_t loadOff = as.currentOffset();
  as.movRegMem(Reg::rax, MemOperand{.base = Reg::rdi}, 8);
  as.aluRegImm(Mnemonic::Add, Reg::rax, 1, 8);
  const uint32_t storeOff = as.currentOffset();
  as.movMemReg(MemOperand{.base = Reg::rsi}, Reg::rax, 8);
  as.ret();
  ExecMemory fn = buildOrDie(as);
  const uint64_t base = reinterpret_cast<uint64_t>(fn.data());

  Config config;
  config.injection().onLoad = &onLoad;
  config.injection().onStore = &onStore;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), nullptr, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();

  g_trace = {};
  int64_t in = 9, out = 0;
  rewritten->as<void (*)(const int64_t*, int64_t*)>()(&in, &out);
  EXPECT_EQ(out, 10);
  ASSERT_EQ(g_trace.loads.size(), 1u);
  ASSERT_EQ(g_trace.stores.size(), 1u);
  // The reported addresses are the guest instruction addresses.
  EXPECT_EQ(g_trace.loads[0], base + loadOff);
  EXPECT_EQ(g_trace.stores[0], base + storeOff);
}

TEST(Injection, StackTrafficNotReported) {
  // push/pop bookkeeping is not data-memory traffic.
  Assembler as;
  as.emit(makeInstr(Mnemonic::Push, 8, Operand::makeReg(Reg::rbx)));
  as.movRegReg(Reg::rbx, Reg::rdi);
  as.movRegReg(Reg::rax, Reg::rbx);
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rbx)));
  as.ret();
  ExecMemory fn = buildOrDie(as);

  Config config;
  config.injection().onLoad = &onLoad;
  config.injection().onStore = &onStore;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 0);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  g_trace = {};
  EXPECT_EQ(rewritten->as<uint64_t (*)(uint64_t)>()(5), 5u);
  EXPECT_TRUE(g_trace.loads.empty());
  EXPECT_TRUE(g_trace.stores.empty());
}

TEST(Injection, HandlersPreserveFlagsAndRegisters) {
  // A handler between a captured cmp and its jcc must not disturb flags.
  Assembler as;
  jit::Label less = as.newLabel();
  as.aluRegReg(Mnemonic::Cmp, Reg::rdi, Reg::rsi);
  as.movRegMem(Reg::rcx, MemOperand{.base = Reg::rdx}, 8);  // injected load
  as.jcc(Cond::L, less);
  as.movRegImm(Reg::rax, 2);
  as.ret();
  as.bind(less);
  as.movRegImm(Reg::rax, 1);
  as.ret();
  ExecMemory fn = buildOrDie(as);

  Config config;
  config.injection().onLoad = &onLoad;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 0, 0, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto cmp = rewritten->as<int64_t (*)(int64_t, int64_t, const int64_t*)>();
  int64_t dummy = 0;
  g_trace = {};
  EXPECT_EQ(cmp(1, 2, &dummy), 1);
  EXPECT_EQ(cmp(2, 1, &dummy), 2);
  EXPECT_EQ(cmp(-5, -5, &dummy), 2);
  EXPECT_EQ(g_trace.loads.size(), 3u);
}

TEST(Injection, FoldedLoadsAreNotReported) {
  // A load from declared-constant memory folds away — no handler call, as
  // the generated code performs no access.
  static const int64_t table[1] = {77};
  Assembler as;
  as.movRegMem(Reg::rax, MemOperand{.base = Reg::rdi}, 8);
  as.ret();
  ExecMemory fn = buildOrDie(as);

  Config config;
  config.setParamKnownPtr(0, sizeof table);
  config.injection().onLoad = &onLoad;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), table);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  g_trace = {};
  EXPECT_EQ(rewritten->as<int64_t (*)(const int64_t*)>()(nullptr), 77);
  EXPECT_TRUE(g_trace.loads.empty());
}

}  // namespace
}  // namespace brew
