// Inlining (§III-E/F): tracing through calls with the shadow call stack,
// nested inlining, kept calls with ABI clobber assumptions, tail calls,
// inline-depth limits, and the return-address/stack-argument guard.
#include <gtest/gtest.h>

#include "core/rewriter.hpp"
#include "isa/printer.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using jit::Assembler;

ExecMemory buildOrDie(Assembler& assembler) {
  auto mem = assembler.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << (mem.ok() ? "" : mem.error().message());
  return std::move(*mem);
}

// callee: rax = rdi * 2 + 1; caller: rax = callee(a) + callee(b)
struct CallPair {
  ExecMemory code;
  uint64_t callerEntry;
  uint64_t calleeEntry;
};

CallPair buildCallPair() {
  Assembler as;
  jit::Label callee = as.newLabel();
  jit::Label caller = as.newLabel();
  as.jmp(caller);
  const uint32_t calleeOff = as.currentOffset();
  as.bind(callee);
  as.emit(makeInstr(Mnemonic::Lea, 8, Operand::makeReg(Reg::rax),
                    Operand::makeMem(MemOperand{.base = Reg::rdi,
                                                .index = Reg::rdi,
                                                .scale = 1,
                                                .disp = 1})));
  as.ret();
  const uint32_t callerOff = as.currentOffset();
  as.bind(caller);
  as.emit(makeInstr(Mnemonic::Push, 8, Operand::makeReg(Reg::rbx)));
  as.movRegReg(Reg::rbx, Reg::rsi);
  as.call(callee);
  as.movRegReg(Reg::rsi, Reg::rax);  // stash first result
  as.movRegReg(Reg::rdi, Reg::rbx);
  as.movRegReg(Reg::rbx, Reg::rax);
  as.call(callee);
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rbx);
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rbx)));
  as.ret();
  CallPair pair;
  pair.code = buildOrDie(as);
  pair.callerEntry = reinterpret_cast<uint64_t>(pair.code.data()) + callerOff;
  pair.calleeEntry = reinterpret_cast<uint64_t>(pair.code.data()) + calleeOff;
  return pair;
}

TEST(Inline, CallsAreInlinedByDefault) {
  CallPair pair = buildCallPair();
  Rewriter rewriter{Config{}};
  auto rewritten =
      rewriter.rewrite(reinterpret_cast<void*>(pair.callerEntry), 3, 4);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto fn = rewritten->as<uint64_t (*)(uint64_t, uint64_t)>();
  EXPECT_EQ(fn(3, 4), (2 * 3 + 1) + (2 * 4 + 1));
  EXPECT_EQ(fn(0, 0), 2u);
  EXPECT_EQ(rewritten->traceStats().inlinedCalls, 2u);
  EXPECT_EQ(rewritten->traceStats().keptCalls, 0u);
  // Inlining removes the call instructions entirely.
  EXPECT_EQ(rewritten->disassembly().find("call"), std::string::npos);
}

TEST(Inline, NoInlineKeepsCall) {
  CallPair pair = buildCallPair();
  Config config;
  config.setFunctionOptions(reinterpret_cast<void*>(pair.calleeEntry),
                            FunctionOptions{.inlineCalls = false});
  Rewriter rewriter{config};
  auto rewritten =
      rewriter.rewrite(reinterpret_cast<void*>(pair.callerEntry), 3, 4);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto fn = rewritten->as<uint64_t (*)(uint64_t, uint64_t)>();
  EXPECT_EQ(fn(5, 6), (2 * 5 + 1) + (2 * 6 + 1));
  EXPECT_EQ(rewritten->traceStats().keptCalls, 2u);
  EXPECT_NE(rewritten->disassembly().find("call"), std::string::npos);
}

TEST(Inline, SpecializationFlowsIntoCallee) {
  CallPair pair = buildCallPair();
  Config config;
  config.setParamKnown(0);
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten =
      rewriter.rewrite(reinterpret_cast<void*>(pair.callerEntry), 10, 20);
  ASSERT_TRUE(rewritten.ok());
  // Everything known: result folds to a constant.
  auto fn = rewritten->as<uint64_t (*)(uint64_t, uint64_t)>();
  EXPECT_EQ(fn(0, 0), 21u + 41u);
  EXPECT_LE(rewritten->emitStats().instructions, 5u);
}

TEST(Inline, DepthLimitFailsGracefully) {
  // Direct self-recursion with no known termination: f() { return f(); }
  Assembler as;
  jit::Label self = as.newLabel();
  as.bind(self);
  as.aluRegImm(Mnemonic::Sub, Reg::rsp, 8);
  as.call(self);
  auto mem = buildOrDie(as);
  Config config;
  config.limits().maxInlineDepth = 16;
  // Keep the variant threshold out of the way so the depth limit is the
  // failure actually observed (each recursion level is a distinct
  // call-stack variant of the same address).
  config.limits().maxVariantsPerAddress = 1000;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(mem.data());
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::InlineDepthLimit);
}

TEST(Inline, CalleeReadingStackArgsFails) {
  // callee reads [rsp+8] (its first stack argument); the inlined layout
  // has no such slot, so the rewrite must fail NonInlinableCall.
  Assembler as;
  jit::Label callee = as.newLabel();
  jit::Label caller = as.newLabel();
  as.jmp(caller);
  as.bind(callee);
  as.movRegMem(Reg::rax, MemOperand{.base = Reg::rsp, .disp = 8}, 8);
  as.ret();
  const uint32_t callerOff = as.currentOffset();
  as.bind(caller);
  as.aluRegImm(Mnemonic::Sub, Reg::rsp, 8);
  as.emit(makeInstr(Mnemonic::Push, 8, Operand::makeImm(42)));
  as.call(callee);
  as.aluRegImm(Mnemonic::Add, Reg::rsp, 16);
  as.ret();
  auto mem = buildOrDie(as);
  const uint64_t callerEntry =
      reinterpret_cast<uint64_t>(mem.data()) + callerOff;

  Rewriter rewriter{Config{}};
  auto rewritten =
      rewriter.rewrite(reinterpret_cast<void*>(callerEntry));
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::NonInlinableCall);
}

TEST(Inline, KeptCallClobbersCallerSavedState) {
  // After a kept call, caller-saved registers must be unknown: if the
  // tracer wrongly kept r10 known across the call, the generated code
  // would fold the post-call use and return a wrong constant.
  static auto clobberer = +[]() -> int64_t { return 7; };
  Assembler as;
  as.movRegImm(Reg::r10, 100);
  as.aluRegImm(Mnemonic::Sub, Reg::rsp, 8);
  as.callAbs(reinterpret_cast<uint64_t>(+clobberer));
  as.aluRegImm(Mnemonic::Add, Reg::rsp, 8);
  as.movRegReg(Reg::rdx, Reg::r10);  // r10 is dead garbage here at runtime
  as.movRegReg(Reg::rax, Reg::rax);  // rax = callee result
  as.ret();
  auto mem = buildOrDie(as);

  Config config;
  config.setFunctionOptions(reinterpret_cast<void*>(+clobberer),
                            FunctionOptions{.inlineCalls = false});
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(mem.data());
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  // Whatever the post-call code does with r10, the callee result must
  // survive in rax.
  auto fn = rewritten->as<int64_t (*)()>();
  EXPECT_EQ(fn(), 7);
}

TEST(Inline, CalleeSavedSurvivesKeptCall) {
  // rbx is callee-saved: its known value must survive a kept call and
  // still fold afterwards.
  static auto noop = +[]() -> int64_t { return 0; };
  Assembler as;
  as.emit(makeInstr(Mnemonic::Push, 8, Operand::makeReg(Reg::rbx)));
  as.movRegImm(Reg::rbx, 41);
  as.aluRegImm(Mnemonic::Sub, Reg::rsp, 8);
  as.callAbs(reinterpret_cast<uint64_t>(+noop));
  as.aluRegImm(Mnemonic::Add, Reg::rsp, 8);
  as.emit(makeInstr(Mnemonic::Lea, 8, Operand::makeReg(Reg::rax),
                    Operand::makeMem(MemOperand{.base = Reg::rbx,
                                                .disp = 1})));
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rbx)));
  as.ret();
  auto mem = buildOrDie(as);

  Config config;
  config.setFunctionOptions(reinterpret_cast<void*>(+noop),
                            FunctionOptions{.inlineCalls = false, .pure = true});
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(mem.data());
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_EQ(rewritten->as<int64_t (*)()>()(), 42);
}

TEST(Inline, IndirectCallWithKnownTargetInlines) {
  // caller: rax = (*rsi)(rdi) — function pointer in rsi, declared known.
  CallPair pair = buildCallPair();
  Assembler as;
  as.emit(makeInstr(Mnemonic::CallInd, 8, Operand::makeReg(Reg::rsi)));
  as.ret();
  // A call pushes a return address; keep rsp 16-aligned like a real caller
  // would. (The traced function is the outer one; alignment is its
  // caller's concern — nothing to do here.)
  auto mem = buildOrDie(as);

  Config config;
  config.setParamKnown(1);  // the function pointer
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(
      mem.data(), 0, reinterpret_cast<void*>(pair.calleeEntry));
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto fn = rewritten->as<uint64_t (*)(uint64_t, void*)>();
  EXPECT_EQ(fn(21, nullptr), 43u);  // indirection removed, callee inlined
  EXPECT_EQ(rewritten->traceStats().inlinedCalls, 1u);
}

TEST(Inline, IndirectCallWithUnknownTargetIsKept) {
  Assembler as;
  as.aluRegImm(Mnemonic::Sub, Reg::rsp, 8);
  as.emit(makeInstr(Mnemonic::CallInd, 8, Operand::makeReg(Reg::rsi)));
  as.aluRegImm(Mnemonic::Add, Reg::rsp, 8);
  as.ret();
  auto mem = buildOrDie(as);

  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(mem.data(), 0, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_EQ(rewritten->traceStats().keptCalls, 1u);
  static auto target = +[](int64_t x) -> int64_t { return x + 5; };
  auto fn = rewritten->as<int64_t (*)(int64_t, int64_t (*)(int64_t))>();
  EXPECT_EQ(fn(10, +target), 15);
}

TEST(Inline, UnknownIndirectJumpFails) {
  Assembler as;
  as.emit(makeInstr(Mnemonic::JmpInd, 8, Operand::makeReg(Reg::rsi)));
  auto mem = buildOrDie(as);
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(mem.data(), 0, nullptr);
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::IndirectUnknownJump);
}

}  // namespace
}  // namespace brew
