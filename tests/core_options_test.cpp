// brew_options / brew_configure: the unified configuration surface. This
// suite lives in its own test binary on purpose — brew_configure must run
// BEFORE anything constructs the process-wide SpecManager, and every other
// C API test binary constructs it on its first rewrite.
#include <gtest/gtest.h>

#include "core/brew.h"

namespace {

__attribute__((noinline)) int addmul(int a, int b) { return a * 7 + b; }
typedef int (*addmul_t)(int, int);

TEST(CApiOptions, NullAndBogusValuesAreSafe) {
  EXPECT_EQ(brew_configure(nullptr), -1);
  brew_options_free(nullptr);  // no-op
  // Setters on NULL are no-ops, not crashes.
  brew_options_set_workers(nullptr, 4);
  brew_options_set_cache_bytes(nullptr, 1);
  brew_options_set_cache_shards(nullptr, 1);
  brew_options_set_max_variants(nullptr, 1);
  brew_options_set_dispatch_ways(nullptr, 1);
  brew_options_set_sample_calls(nullptr, 1);
  brew_options_set_decay_interval(nullptr, 1);
  brew_options_set_async_specialize(nullptr, 1);
}

// One ordered test so configuration provably precedes first use and the
// freeze provably follows it.
TEST(CApiOptions, ConfigureShapesTheProcessRuntimeThenFreezes) {
  brew_options* options = brew_options_init();
  ASSERT_NE(options, nullptr);
  brew_options_set_workers(options, 1);
  brew_options_set_cache_bytes(options, 8u << 20);
  brew_options_set_cache_shards(options, 1);  // single-lock control mode
  brew_options_set_max_variants(options, 3);
  brew_options_set_dispatch_ways(options, 2);
  brew_options_set_sample_calls(options, 4);
  brew_options_set_decay_interval(options, 16);
  brew_options_set_async_specialize(options, 0);

  // Before first use: accepted, and a second call overwrites wholesale.
  EXPECT_EQ(brew_configure(options), 0);
  EXPECT_EQ(brew_configure(options), 0);
  brew_options_free(options);

  // First rewrite constructs the runtime from the staged options.
  brew_conf* conf = brew_initConf();
  brew_setnpar(conf, 2);
  brew_setpar(conf, 1, BREW_KNOWN);
  brew_setret(conf, BREW_RET_INT);
  brew_func* h = brew_rewrite2(conf, (void*)addmul, (uint64_t)3, (uint64_t)0);
  ASSERT_NE(h, nullptr) << brew_lastError(conf);
  EXPECT_EQ(((addmul_t)brew_func_entry(h))(0, 2), 3 * 7 + 2);
  brew_release_h(h);

  brew_cache_stats cache;
  brew_getcachestats(&cache);
  EXPECT_EQ(cache.shards, 1u);                  // configured, not env/default
  EXPECT_EQ(cache.capacity_bytes, 8u << 20);

  // The dispatcher inherits the configured variant budget (3) even when
  // more keys are hot.
  brew_conf* dconf = brew_initConf();
  brew_setnpar(dconf, 2);
  brew_setret(dconf, BREW_RET_INT);
  brew_dispatch* d = brew_dispatch_create(dconf, (void*)addmul, 1,
                                          (uint64_t)0, (uint64_t)0);
  ASSERT_NE(d, nullptr) << brew_lastError(dconf);
  addmul_t entry = (addmul_t)brew_dispatch_entry(d);
  for (int round = 0; round < 200; ++round)
    for (int key = 1; key <= 5; ++key)
      ASSERT_EQ(entry(key, round), addmul(key, round));
  EXPECT_LE(brew_dispatch_variant_count(d), 3u);
  brew_dispatch_free(d);
  brew_freeConf(dconf);

  // After first use the configuration is frozen.
  brew_options* late = brew_options_init();
  EXPECT_EQ(brew_configure(late), -1);
  brew_options_free(late);
  brew_freeConf(conf);
}

}  // namespace
