// Unroll policies and block-variant management (§III-F): full unrolling of
// known loops, BREW_FN_NOUNROLL, variant thresholds, and known-world-state
// migration with compensation code.
#include <gtest/gtest.h>

#include "core/rewriter.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using jit::Assembler;

ExecMemory buildOrDie(Assembler& assembler) {
  auto mem = assembler.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << (mem.ok() ? "" : mem.error().message());
  return std::move(*mem);
}

// rax = sum of rsi[0..rdi)
ExecMemory buildSumArray() {
  Assembler as;
  as.movRegImm(Reg::rax, 0);
  as.movRegImm(Reg::rcx, 0);
  jit::Label loop = as.newLabel();
  jit::Label done = as.newLabel();
  as.bind(loop);
  as.aluRegReg(Mnemonic::Cmp, Reg::rcx, Reg::rdi);
  as.jcc(Cond::E, done);
  MemOperand m;
  m.base = Reg::rsi;
  m.index = Reg::rcx;
  m.scale = 8;
  as.emit(makeInstr(Mnemonic::Add, 8, Operand::makeReg(Reg::rax),
                    Operand::makeMem(m)));
  as.aluRegImm(Mnemonic::Add, Reg::rcx, 1);
  as.jmp(loop);
  as.bind(done);
  as.ret();
  return buildOrDie(as);
}

TEST(Policy, KnownTripCountUnrollsCompletely) {
  ExecMemory fn = buildSumArray();
  Config config;
  config.setParamKnown(0);  // n = 6
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 6, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  int64_t data[6] = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t, const int64_t*)>()(0, data),
            21);
  EXPECT_EQ(rewritten->traceStats().capturedBranches, 0u);
  // Six unrolled adds with folded displacements.
  const std::string disasm = rewritten->disassembly();
  EXPECT_NE(disasm.find("rsi+0x28"), std::string::npos) << disasm;
}

TEST(Policy, ForceUnknownKeepsLoop) {
  ExecMemory fn = buildSumArray();
  Config config;
  config.setParamKnown(0);
  config.setFunctionOptions(fn.data(),
                            FunctionOptions{.forceUnknownResults = true});
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 6, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  int64_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  // n folded to 6, but the loop itself survives.
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t, const int64_t*)>()(0, data),
            21);
  EXPECT_GE(rewritten->traceStats().capturedBranches, 1u);
}

TEST(Policy, VariantThresholdTriggersMigration) {
  ExecMemory fn = buildSumArray();
  Config config;
  config.setParamKnown(0);
  config.limits().maxVariantsPerAddress = 4;  // force early migration
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 64, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_GE(rewritten->traceStats().migrations, 1u);
  // Migration generalizes the counter to unknown: the remaining
  // iterations run as a real loop — still correct.
  int64_t data[64];
  int64_t want = 0;
  for (int i = 0; i < 64; ++i) {
    data[i] = i * 3 + 1;
    want += data[i];
  }
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t, const int64_t*)>()(0, data),
            want);
  EXPECT_GE(rewritten->traceStats().capturedBranches, 1u);
}

TEST(Policy, MigrationTerminatesAtAllUnknown) {
  // Tiny threshold: only two variants per address allowed. Must still
  // converge (the paper's argument: the chain ends at the all-unknown
  // state) and produce correct code.
  ExecMemory fn = buildSumArray();
  Config config;
  config.setParamKnown(0);
  config.limits().maxVariantsPerAddress = 2;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 200, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  int64_t data[200];
  int64_t want = 0;
  for (int i = 0; i < 200; ++i) {
    data[i] = i;
    want += i;
  }
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t, const int64_t*)>()(0, data),
            want);
}

TEST(Policy, TraceStepLimitFailsCleanly) {
  ExecMemory fn = buildSumArray();
  Config config;
  config.setParamKnown(0);
  config.limits().maxTraceSteps = 100;
  config.limits().maxVariantsPerAddress = 1 << 28;  // no migration escape
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 1000000, nullptr);
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::TraceStepLimit);
}

TEST(Policy, CodeBudgetFailsCleanly) {
  ExecMemory fn = buildSumArray();
  Config config;
  config.setParamKnown(0);
  config.limits().maxCodeBytes = 256;
  config.limits().maxVariantsPerAddress = 1 << 28;
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 100000, nullptr);
  ASSERT_FALSE(rewritten.ok());
  // Either the emitter's byte budget or the block limit stops it first;
  // both are clean resource failures.
  EXPECT_TRUE(rewritten.error().code == ErrorCode::CodeBufferFull ||
              rewritten.error().code == ErrorCode::VariantLimit ||
              rewritten.error().code == ErrorCode::TraceStepLimit)
      << rewritten.error().message();
}

TEST(Policy, InfiniteLoopWithStableStateTerminates) {
  // while(true) { rax = rax; } with no state change per iteration: the
  // second pass over the loop head sees an identical known-world state
  // and closes the cycle — the rewrite TERMINATES (generating an endless
  // loop, faithfully).
  Assembler as;
  jit::Label loop = as.newLabel();
  as.movRegImm(Reg::rax, 1);
  as.bind(loop);
  as.movRegReg(Reg::rcx, Reg::rdi);  // unknown -> state stable
  as.jmp(loop);
  ExecMemory fn = buildOrDie(as);
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 0);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  // Don't call it (it would hang) — structure suffices: a back-edge only.
  EXPECT_LE(rewritten->traceStats().blocks, 3u);
}

TEST(Policy, PerFunctionPolicyRestoredAfterInlineReturn) {
  // Outer (NOUNROLL) calls inner (default): inner's known loop unrolls,
  // outer's doesn't.
  Assembler as;
  jit::Label inner = as.newLabel();
  jit::Label outer = as.newLabel();
  as.jmp(outer);
  const uint32_t innerOff = as.currentOffset();
  as.bind(inner);
  // inner: rax = 10 iterations of known loop
  as.movRegImm(Reg::rax, 0);
  as.movRegImm(Reg::rcx, 10);
  jit::Label iloop = as.newLabel();
  as.bind(iloop);
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rcx);
  as.aluRegImm(Mnemonic::Sub, Reg::rcx, 1);
  as.jcc(Cond::NE, iloop);
  as.ret();
  const uint32_t outerOff = as.currentOffset();
  as.bind(outer);
  // outer: loop rdi times calling inner, accumulate in rdx -> rax
  as.emit(makeInstr(Mnemonic::Push, 8, Operand::makeReg(Reg::rbx)));
  as.movRegReg(Reg::rbx, Reg::rdi);
  as.movRegImm(Reg::rdx, 0);
  jit::Label oloop = as.newLabel();
  jit::Label odone = as.newLabel();
  as.bind(oloop);
  as.aluRegImm(Mnemonic::Cmp, Reg::rbx, 0);
  as.jcc(Cond::E, odone);
  as.emit(makeInstr(Mnemonic::Push, 8, Operand::makeReg(Reg::rdx)));
  as.call(inner);
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rdx)));
  as.aluRegReg(Mnemonic::Add, Reg::rdx, Reg::rax);
  as.aluRegImm(Mnemonic::Sub, Reg::rbx, 1);
  as.jmp(oloop);
  as.bind(odone);
  as.movRegReg(Reg::rax, Reg::rdx);
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rbx)));
  as.ret();
  ExecMemory code = buildOrDie(as);
  const uint64_t outerEntry =
      reinterpret_cast<uint64_t>(code.data()) + outerOff;
  (void)innerOff;

  Config config;
  config.setFunctionOptions(reinterpret_cast<void*>(outerEntry),
                            FunctionOptions{.forceUnknownResults = true});
  Rewriter rewriter{config};
  auto rewritten =
      rewriter.rewrite(reinterpret_cast<void*>(outerEntry), 3);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto fn = rewritten->as<int64_t (*)(int64_t)>();
  EXPECT_EQ(fn(3), 3 * 55);
  EXPECT_EQ(fn(7), 7 * 55);
  // Outer loop kept (captured branch) while the inner 10-iteration loop
  // unrolled away inside it.
  EXPECT_GE(rewritten->traceStats().capturedBranches, 1u);
}

}  // namespace
}  // namespace brew
