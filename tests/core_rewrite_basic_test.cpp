// End-to-end rewriter tests on deterministic assembler-built inputs:
// the tracer is exercised independently of compiler output.
#include <gtest/gtest.h>

#include "core/rewriter.hpp"
#include "isa/printer.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using jit::Assembler;

ExecMemory buildOrDie(Assembler& assembler) {
  auto mem = assembler.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << (mem.ok() ? "" : mem.error().message());
  return std::move(*mem);
}

// rax = rdi + rsi
ExecMemory buildAdd() {
  Assembler a;
  a.movRegReg(Reg::rax, Reg::rdi);
  a.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  a.ret();
  return buildOrDie(a);
}

TEST(Rewrite, IdentityNoKnownParams) {
  ExecMemory fn = buildAdd();
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 1, 2);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto add = rewritten->as<int64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(add(2, 3), 5);
  EXPECT_EQ(add(-10, 4), -6);
  EXPECT_EQ(add(INT64_MAX, 1), INT64_MIN);
}

TEST(Rewrite, SpecializeSecondParam) {
  ExecMemory fn = buildAdd();
  Config config;
  config.setParamKnown(1);  // rsi fixed
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 0, 42);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto addK = rewritten->as<int64_t (*)(int64_t, int64_t)>();
  // Drop-in signature; the second argument is ignored (baked in as 42).
  EXPECT_EQ(addK(1, 999), 43);
  EXPECT_EQ(addK(-42, 7), 0);
  // The add must have been folded to an immediate form: no instruction may
  // reference rsi anymore.
  const std::string disasm = rewritten->disassembly();
  EXPECT_EQ(disasm.find("rsi"), std::string::npos) << disasm;
}

TEST(Rewrite, FullyConstantFunction) {
  ExecMemory fn = buildAdd();
  Config config;
  config.setParamKnown(0);
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 30, 12);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto constFn = rewritten->as<int64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(constFn(0, 0), 42);
  // Everything folds: the body should be a single mov + ret.
  EXPECT_LE(rewritten->traceStats().capturedInstructions, 1u);
}

// rax = rdi * 8 + 3 via shl/add, exercising flag semantics.
TEST(Rewrite, ShiftAndAdd) {
  Assembler a;
  a.movRegReg(Reg::rax, Reg::rdi);
  a.emit(makeInstr(Mnemonic::Shl, 8, Operand::makeReg(Reg::rax),
                   Operand::makeImm(3)));
  a.aluRegImm(Mnemonic::Add, Reg::rax, 3);
  a.ret();
  ExecMemory fn = buildOrDie(a);

  Rewriter plain{Config{}};
  auto rewritten = plain.rewrite(fn.data(), 5);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t)>()(5), 43);

  Config config;
  config.setParamKnown(0);
  Rewriter spec{config};
  auto specialized = spec.rewrite(fn.data(), 5);
  ASSERT_TRUE(specialized.ok());
  EXPECT_EQ(specialized->as<int64_t (*)(int64_t)>()(123), 43);
}

// Conditional: rax = (rdi < rsi) ? 1 : 2.
ExecMemory buildCompare() {
  Assembler a;
  jit::Label less = a.newLabel();
  a.aluRegReg(Mnemonic::Cmp, Reg::rdi, Reg::rsi);
  a.jcc(Cond::L, less);
  a.movRegImm(Reg::rax, 2);
  a.ret();
  a.bind(less);
  a.movRegImm(Reg::rax, 1);
  a.ret();
  return buildOrDie(a);
}

TEST(Rewrite, UnknownBranchCapturesBothPaths) {
  ExecMemory fn = buildCompare();
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 0, 0);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto cmp = rewritten->as<int64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(cmp(1, 2), 1);
  EXPECT_EQ(cmp(2, 1), 2);
  EXPECT_EQ(cmp(7, 7), 2);
  EXPECT_GE(rewritten->traceStats().capturedBranches, 1u);
}

TEST(Rewrite, KnownBranchResolved) {
  ExecMemory fn = buildCompare();
  Config config;
  config.setParamKnown(0);
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 1, 5);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t, int64_t)>()(100, 0), 1);
  EXPECT_EQ(rewritten->traceStats().capturedBranches, 0u);
  EXPECT_GE(rewritten->traceStats().resolvedBranches, 1u);
}

// Loop: sum of 1..rdi — fully unrolled when rdi is known.
ExecMemory buildSumLoop() {
  Assembler a;
  a.movRegImm(Reg::rax, 0);
  a.movRegReg(Reg::rcx, Reg::rdi);
  jit::Label loop = a.newLabel();
  jit::Label done = a.newLabel();
  a.bind(loop);
  a.aluRegImm(Mnemonic::Cmp, Reg::rcx, 0);
  a.jcc(Cond::E, done);
  a.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rcx);
  a.aluRegImm(Mnemonic::Sub, Reg::rcx, 1);
  a.jmp(loop);
  a.bind(done);
  a.ret();
  return buildOrDie(a);
}

TEST(Rewrite, KnownLoopFullyUnrolls) {
  ExecMemory fn = buildSumLoop();
  Config config;
  config.setParamKnown(0);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 10);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_EQ(rewritten->as<int64_t (*)(int64_t)>()(0), 55);
  // No captured branches: the loop was evaluated away entirely.
  EXPECT_EQ(rewritten->traceStats().capturedBranches, 0u);
}

TEST(Rewrite, UnknownLoopKeepsControlFlow) {
  ExecMemory fn = buildSumLoop();
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 1);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto sum = rewritten->as<int64_t (*)(int64_t)>();
  EXPECT_EQ(sum(0), 0);
  EXPECT_EQ(sum(1), 1);
  EXPECT_EQ(sum(100), 5050);
  EXPECT_GE(rewritten->traceStats().capturedBranches, 1u);
}

// Memory: rax = m[rdi] with a known constant table.
TEST(Rewrite, KnownMemoryLoadFolds) {
  static const int64_t table[4] = {10, 20, 30, 40};
  Assembler a;
  MemOperand m;
  m.base = Reg::rdi;
  m.index = Reg::rsi;
  m.scale = 8;
  a.movRegMem(Reg::rax, m, 8);
  a.ret();
  ExecMemory fn = buildOrDie(a);

  Config config;
  config.setParamKnownPtr(0, sizeof table);
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), table, 2);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_EQ(rewritten->as<int64_t (*)(const int64_t*, int64_t)>()(nullptr, 0),
            30);
}

TEST(Rewrite, IndexFoldsIntoDisplacement) {
  // m[rsi] with known rsi: load becomes [rdi + 16].
  Assembler a;
  MemOperand m;
  m.base = Reg::rdi;
  m.index = Reg::rsi;
  m.scale = 8;
  a.movRegMem(Reg::rax, m, 8);
  a.ret();
  ExecMemory fn = buildOrDie(a);

  Config config;
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), nullptr, 2);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  int64_t data[4] = {10, 20, 30, 40};
  EXPECT_EQ(rewritten->as<int64_t (*)(const int64_t*, int64_t)>()(data, 0),
            30);
  const std::string disasm = rewritten->disassembly();
  EXPECT_EQ(disasm.find("rsi"), std::string::npos) << disasm;
  EXPECT_NE(disasm.find("rdi+0x10"), std::string::npos) << disasm;
}

TEST(Rewrite, StoreToUnknownPointerSurvives) {
  // *(int64*)rdi = rsi + 1
  Assembler a;
  a.movRegReg(Reg::rax, Reg::rsi);
  a.aluRegImm(Mnemonic::Add, Reg::rax, 1);
  a.movMemReg(MemOperand{.base = Reg::rdi}, Reg::rax, 8);
  a.ret();
  ExecMemory fn = buildOrDie(a);

  Config config;
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), nullptr, 41);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  int64_t out = 0;
  rewritten->as<void (*)(int64_t*, int64_t)>()(&out, 0);
  EXPECT_EQ(out, 42);
}

TEST(Rewrite, WriteToKnownMemoryFails) {
  static int64_t data[1] = {0};
  Assembler a;
  a.movMemReg(MemOperand{.base = Reg::rdi}, Reg::rsi, 8);
  a.ret();
  ExecMemory fn = buildOrDie(a);

  Config config;
  config.setParamKnownPtr(0, sizeof data);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), data, 0);
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::WriteToKnownMemory);
}

TEST(Rewrite, UndecodableFailsGracefully) {
  Assembler a;
  a.emitBytes(std::vector<uint8_t>{0x0f, 0xa2, 0xc3});  // cpuid; ret
  ExecMemory fn = buildOrDie(a);
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data());
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::UndecodableInstruction);
}

TEST(Rewrite, SseSpecialization) {
  // xmm0 = xmm0 * xmm1 + constant table load
  static const double factor[1] = {2.5};
  Assembler a;
  a.emit(makeInstr(Mnemonic::Mulsd, 8, Operand::makeReg(Reg::xmm0),
                   Operand::makeReg(Reg::xmm1)));
  a.emit(makeInstr(Mnemonic::Mulsd, 8, Operand::makeReg(Reg::xmm0),
                   Operand::makeMem(MemOperand{.base = Reg::rdi})));
  a.ret();
  ExecMemory fn = buildOrDie(a);

  Config config;
  config.setParamKnownPtr(0, sizeof factor);   // int param: the pointer
  config.setParamKnown(1, /*isFloat=*/true);   // xmm1 fixed at 3.0
  config.setParamFloat(2);
  Rewriter rewriter{config};
  // signature: f(const double* table, double unknown_x, double known_y)
  // registers: rdi = table, xmm0 = x (unknown), xmm1 = y (known)
  const ArgValue args[] = {ArgValue::fromPtr(factor),
                           ArgValue::fromDouble(0.0),  // placeholder for x
                           ArgValue::fromDouble(3.0)};
  // Parameter order: 0 -> rdi (known ptr), 1 -> xmm0 (unknown), 2 -> xmm1.
  Config config2;
  config2.setParamKnownPtr(0, sizeof factor);
  config2.setParamFloat(1);
  config2.setParamKnown(2, true);
  Rewriter rewriter2{config2};
  auto rewritten = rewriter2.rewrite(fn.data(), args);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto f = rewritten->as<double (*)(const double*, double, double)>();
  EXPECT_DOUBLE_EQ(f(nullptr, 2.0, 99.0), 2.0 * 3.0 * 2.5);
}

TEST(Rewrite, DropInSignatureKeepsUnknownArgsWorking) {
  // f(a, b) = a*2 + b, specialize b.
  Assembler a;
  a.emit(makeInstr(Mnemonic::Lea, 8, Operand::makeReg(Reg::rax),
                   Operand::makeMem(MemOperand{
                       .base = Reg::rdi, .index = Reg::rdi, .scale = 1})));
  a.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  a.ret();
  ExecMemory fn = buildOrDie(a);
  Config config;
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 0, 100);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto f = rewritten->as<int64_t (*)(int64_t, int64_t)>();
  for (int64_t x : {-5, 0, 3, 1000}) EXPECT_EQ(f(x, 0), x * 2 + 100);
}

}  // namespace
}  // namespace brew
