// Targeted tracer tests for SSE paths that the broad fuzzers only brush:
// lane moves (movlpd/movhpd), packed arithmetic, conversions, division and
// the wide integer multiply/divide family in both elide and capture modes.
#include <gtest/gtest.h>

#include <cstring>

#include "core/rewriter.hpp"
#include "jit/assembler.hpp"

namespace brew {
namespace {

using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using jit::Assembler;

ExecMemory buildOrDie(Assembler& assembler) {
  auto mem = assembler.finalizeExecutable();
  EXPECT_TRUE(mem.ok()) << (mem.ok() ? "" : mem.error().message());
  return std::move(*mem);
}

TEST(SsePaths, PackedArithmeticCaptured) {
  // f(a*, b*) -> sum of both lanes of (A + B) * A, via packed ops.
  Assembler as;
  as.emit(makeInstr(Mnemonic::Movupd, 16, Operand::makeReg(Reg::xmm0),
                    Operand::makeMem(MemOperand{.base = Reg::rdi})));
  as.emit(makeInstr(Mnemonic::Movupd, 16, Operand::makeReg(Reg::xmm1),
                    Operand::makeMem(MemOperand{.base = Reg::rsi})));
  as.emit(makeInstr(Mnemonic::Addpd, 16, Operand::makeReg(Reg::xmm1),
                    Operand::makeReg(Reg::xmm0)));
  as.emit(makeInstr(Mnemonic::Mulpd, 16, Operand::makeReg(Reg::xmm1),
                    Operand::makeReg(Reg::xmm0)));
  as.emit(makeInstr(Mnemonic::Movapd, 16, Operand::makeReg(Reg::xmm0),
                    Operand::makeReg(Reg::xmm1)));
  as.emit(makeInstr(Mnemonic::Unpckhpd, 16, Operand::makeReg(Reg::xmm1),
                    Operand::makeReg(Reg::xmm1)));
  as.emit(makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeReg(Reg::xmm1)));
  as.ret();
  ExecMemory fn = buildOrDie(as);
  using f_t = double (*)(const double*, const double*);
  auto original = fn.entry<f_t>();

  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), nullptr, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  const double a[2] = {1.5, -2.0};
  const double b[2] = {0.25, 4.0};
  EXPECT_EQ(original(a, b), rewritten->as<f_t>()(a, b));
}

TEST(SsePaths, PackedFoldsWithKnownTable) {
  alignas(16) static const double table[2] = {3.0, 5.0};
  Assembler as;
  as.emit(makeInstr(Mnemonic::Movapd, 16, Operand::makeReg(Reg::xmm1),
                    Operand::makeMem(MemOperand{.base = Reg::rdi})));
  as.emit(makeInstr(Mnemonic::Mulpd, 16, Operand::makeReg(Reg::xmm1),
                    Operand::makeReg(Reg::xmm1)));  // squares: 9, 25
  as.emit(makeInstr(Mnemonic::Movapd, 16, Operand::makeReg(Reg::xmm0),
                    Operand::makeReg(Reg::xmm1)));
  as.emit(makeInstr(Mnemonic::Unpckhpd, 16, Operand::makeReg(Reg::xmm1),
                    Operand::makeReg(Reg::xmm1)));
  as.emit(makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeReg(Reg::xmm1)));  // 9 + 25
  as.ret();
  ExecMemory fn = buildOrDie(as);

  Config config;
  config.setParamKnownPtr(0, sizeof table);
  config.setReturnKind(ReturnKind::Float);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), table);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_DOUBLE_EQ(rewritten->as<double (*)(const double*)>()(nullptr),
                   34.0);
  // Everything folded: just the constant materialization and ret remain.
  EXPECT_LE(rewritten->emitStats().instructions, 3u);
}

TEST(SsePaths, LaneMovesTraced) {
  // Build {lo=a[0], hi=b[0]} via movlpd/movhpd, then store both lanes.
  Assembler as;
  as.emit(makeInstr(Mnemonic::Movlpd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeMem(MemOperand{.base = Reg::rdi})));
  as.emit(makeInstr(Mnemonic::Movhpd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeMem(MemOperand{.base = Reg::rsi})));
  as.emit(makeInstr(Mnemonic::Movupd, 16,
                    Operand::makeMem(MemOperand{.base = Reg::rdx}),
                    Operand::makeReg(Reg::xmm0)));
  as.ret();
  ExecMemory fn = buildOrDie(as);
  using f_t = void (*)(const double*, const double*, double*);

  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), nullptr, nullptr, nullptr);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  const double a = 1.25, b = -8.5;
  double out[2] = {0, 0};
  rewritten->as<f_t>()(&a, &b, out);
  EXPECT_EQ(out[0], 1.25);
  EXPECT_EQ(out[1], -8.5);
}

TEST(SsePaths, LaneLoadFoldsFromKnownData) {
  static const double known[1] = {7.5};
  Assembler as;
  as.emit(makeInstr(Mnemonic::Movlpd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeMem(MemOperand{.base = Reg::rdi})));
  as.ret();
  ExecMemory fn = buildOrDie(as);
  Config config;
  config.setParamKnownPtr(0, sizeof known);
  config.setReturnKind(ReturnKind::Float);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), known);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  EXPECT_DOUBLE_EQ(rewritten->as<double (*)(const double*)>()(nullptr), 7.5);
}

TEST(SsePaths, DivisionElisionAndCapture) {
  // rax = rdi / rsi (idiv): known inputs fold, unknown inputs capture.
  Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.emit(makeInstr(Mnemonic::Cdq, 8));  // cqo
  as.emit(makeInstr(Mnemonic::Idiv, 8, Operand::makeReg(Reg::rsi)));
  as.ret();
  ExecMemory fn = buildOrDie(as);
  using d_t = int64_t (*)(int64_t, int64_t);

  {
    Config config;
    config.setParamKnown(0);
    config.setParamKnown(1);
    Rewriter rewriter{config};
    auto rewritten = rewriter.rewrite(fn.data(), -100, 7);
    ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
    EXPECT_EQ(rewritten->as<d_t>()(0, 0), -14);
    EXPECT_LE(rewritten->emitStats().instructions, 3u);  // folded
  }
  {
    Rewriter rewriter{Config{}};
    auto rewritten = rewriter.rewrite(fn.data(), 0, 1);
    ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
    auto divide = rewritten->as<d_t>();
    EXPECT_EQ(divide(100, 7), 14);
    EXPECT_EQ(divide(-100, 7), -14);
    EXPECT_EQ(divide(99, -3), -33);
  }
}

TEST(SsePaths, DivideFaultDuringTraceFailsCleanly) {
  Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.emit(makeInstr(Mnemonic::Cdq, 8));
  as.emit(makeInstr(Mnemonic::Idiv, 8, Operand::makeReg(Reg::rsi)));
  as.ret();
  ExecMemory fn = buildOrDie(as);
  Config config;
  config.setParamKnown(0);
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(fn.data(), 5, 0);  // divide by zero
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.error().code, ErrorCode::UnsupportedInstruction);
}

TEST(SsePaths, WideMultiplyTraced) {
  // (rdi * rsi) high 64 bits via mul.
  Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.emit(makeInstr(Mnemonic::MulWide, 8, Operand::makeReg(Reg::rsi)));
  as.movRegReg(Reg::rax, Reg::rdx);
  as.ret();
  ExecMemory fn = buildOrDie(as);
  using m_t = uint64_t (*)(uint64_t, uint64_t);
  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 0, 0);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto mulhi = rewritten->as<m_t>();
  EXPECT_EQ(mulhi(~0ull, ~0ull), 0xFFFFFFFFFFFFFFFEull);
  EXPECT_EQ(mulhi(1ull << 32, 1ull << 32), 1ull);

  Config known;
  known.setParamKnown(0);
  known.setParamKnown(1);
  Rewriter rewriter2{known};
  auto folded = rewriter2.rewrite(fn.data(), ~0ull, ~0ull);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->as<m_t>()(0, 0), 0xFFFFFFFFFFFFFFFEull);
}

TEST(SsePaths, ConversionRoundTrip) {
  // double -> int -> double with truncation.
  Assembler as;
  isa::Instruction toInt = makeInstr(Mnemonic::Cvttsd2si, 8,
                                     Operand::makeReg(Reg::rax),
                                     Operand::makeReg(Reg::xmm0));
  toInt.srcWidth = 8;
  as.emit(toInt);
  isa::Instruction toFp = makeInstr(Mnemonic::Cvtsi2sd, 8,
                                    Operand::makeReg(Reg::xmm0),
                                    Operand::makeReg(Reg::rax));
  toFp.srcWidth = 8;
  as.emit(toFp);
  as.ret();
  ExecMemory fn = buildOrDie(as);
  using t_t = double (*)(double);

  Rewriter rewriter{Config{}};
  auto rewritten = rewriter.rewrite(fn.data(), 0.0);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto truncate = rewritten->as<t_t>();
  EXPECT_DOUBLE_EQ(truncate(2.9), 2.0);
  EXPECT_DOUBLE_EQ(truncate(-2.9), -2.0);

  Config known;
  known.setParamKnown(0, /*isFloat=*/true);
  known.setReturnKind(ReturnKind::Float);
  Rewriter rewriter2{known};
  const ArgValue args[] = {ArgValue::fromDouble(123.75)};
  auto folded = rewriter2.rewrite(fn.data(), args);
  ASSERT_TRUE(folded.ok());
  EXPECT_DOUBLE_EQ(folded->as<t_t>()(0.0), 123.0);
}

TEST(SsePaths, UcomisdBranchResolvedWhenKnown) {
  // return (a < 2.5) ? 1 : 0 via ucomisd + seta/setb.
  Assembler as;
  static const double threshold[1] = {2.5};
  as.emit(makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm1),
                    Operand::makeMem(MemOperand{.base = Reg::rdi})));
  as.emit(makeInstr(Mnemonic::Ucomisd, 8, Operand::makeReg(Reg::xmm1),
                    Operand::makeReg(Reg::xmm0)));
  as.movRegImm(Reg::rax, 0, 4);
  isa::Instruction seta = makeInstr(Mnemonic::Setcc, 1,
                                    Operand::makeReg(Reg::rax));
  seta.cond = isa::Cond::A;  // threshold > a
  as.emit(seta);
  as.ret();
  ExecMemory fn = buildOrDie(as);
  using c_t = int64_t (*)(const double*, double);

  // Unknown argument: comparison captured, works for both outcomes.
  Config config;
  config.setParamKnownPtr(0, sizeof threshold);
  config.setParamFloat(1);
  Rewriter rewriter{config};
  const ArgValue args[] = {ArgValue::fromPtr(threshold),
                           ArgValue::fromDouble(0.0)};
  auto rewritten = rewriter.rewrite(fn.data(), args);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto test = rewritten->as<c_t>();
  EXPECT_EQ(test(nullptr, 1.0), 1);
  EXPECT_EQ(test(nullptr, 3.0), 0);
  EXPECT_EQ(test(nullptr, 2.5), 0);

  // Known argument: comparison folds away entirely.
  Config allKnown;
  allKnown.setParamKnownPtr(0, sizeof threshold);
  allKnown.setParamKnown(1, /*isFloat=*/true);
  allKnown.setReturnKind(ReturnKind::Int);
  Rewriter rewriter2{allKnown};
  const ArgValue args2[] = {ArgValue::fromPtr(threshold),
                            ArgValue::fromDouble(1.0)};
  auto folded = rewriter2.rewrite(fn.data(), args2);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->as<c_t>()(nullptr, 99.0), 1);
  EXPECT_LE(folded->emitStats().instructions, 2u);
}

}  // namespace
}  // namespace brew
