// Interpreter tests: the concrete interpreter must agree with native
// execution on the same machine code — checked on hand-built functions and
// on randomly generated straight-line programs (property style).
#include <gtest/gtest.h>

#include "emu/interpreter.hpp"
#include "jit/assembler.hpp"
#include "support/prng.hpp"

namespace brew::emu {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

TEST(Interpreter, RunsSimpleFunction) {
  jit::Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  Interpreter interp;
  const uint64_t args[] = {30, 12};
  auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), args);
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_EQ(result->intResult, 42u);
}

TEST(Interpreter, LoopAndBranches) {
  // sum 1..n
  jit::Assembler as;
  as.movRegImm(Reg::rax, 0);
  as.movRegReg(Reg::rcx, Reg::rdi);
  jit::Label loop = as.newLabel();
  jit::Label done = as.newLabel();
  as.bind(loop);
  as.aluRegImm(Mnemonic::Cmp, Reg::rcx, 0);
  as.jcc(Cond::E, done);
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rcx);
  as.aluRegImm(Mnemonic::Sub, Reg::rcx, 1);
  as.jmp(loop);
  as.bind(done);
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  Interpreter interp;
  for (uint64_t n : {0ull, 1ull, 10ull, 100ull}) {
    const uint64_t args[] = {n};
    auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), args);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->intResult, n * (n + 1) / 2);
  }
}

TEST(Interpreter, CallsAndStack) {
  // helper: rax = rdi * 3;  main: call helper twice, add results.
  jit::Assembler as;
  jit::Label helper = as.newLabel();
  jit::Label start = as.newLabel();
  as.jmp(start);
  as.bind(helper);
  as.emit(makeInstr(Mnemonic::Imul, 8, Operand::makeReg(Reg::rax),
                    Operand::makeReg(Reg::rdi), Operand::makeImm(3)));
  as.ret();
  as.bind(start);
  as.emit(makeInstr(Mnemonic::Push, 8, Operand::makeReg(Reg::rbx)));
  as.call(helper);
  as.movRegReg(Reg::rbx, Reg::rax);
  as.movRegReg(Reg::rdi, Reg::rsi);
  as.call(helper);
  as.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rbx);
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rbx)));
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  Interpreter interp;
  const uint64_t args[] = {5, 7};
  auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), args);
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_EQ(result->intResult, 36u);  // 15 + 21

  // Native agreement.
  auto fn = mem->entry<uint64_t (*)(uint64_t, uint64_t)>();
  EXPECT_EQ(fn(5, 7), 36u);
}

TEST(Interpreter, SseArithmetic) {
  jit::Assembler as;
  as.emit(makeInstr(Mnemonic::Mulsd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeReg(Reg::xmm1)));
  as.emit(makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeReg(Reg::xmm2)));
  as.emit(makeInstr(Mnemonic::Sqrtsd, 8, Operand::makeReg(Reg::xmm0),
                    Operand::makeReg(Reg::xmm0)));
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  Interpreter interp;
  const double fp[] = {3.0, 5.0, 1.0};  // sqrt(3*5+1) = 4
  auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), {}, fp);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->fpResult(), 4.0);
}

TEST(Interpreter, MemoryAccess) {
  int64_t data[4] = {10, 20, 30, 40};
  jit::Assembler as;
  MemOperand m;
  m.base = Reg::rdi;
  m.index = Reg::rsi;
  m.scale = 8;
  as.movRegMem(Reg::rax, m, 8);
  as.aluRegImm(Mnemonic::Add, Reg::rax, 1);
  as.movMemReg(m, Reg::rax, 8);
  as.ret();
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());

  Interpreter interp;
  const uint64_t args[] = {reinterpret_cast<uint64_t>(data), 2};
  auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intResult, 31u);
  EXPECT_EQ(data[2], 31);
}

TEST(Interpreter, StepLimitStopsRunaway) {
  jit::Assembler as;
  jit::Label loop = as.newLabel();
  as.bind(loop);
  as.jmp(loop);  // endless
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());
  Interpreter::Options options;
  options.maxSteps = 1000;
  Interpreter interp(options);
  auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::TraceStepLimit);
}

TEST(Interpreter, UndecodableReported) {
  jit::Assembler as;
  as.emitBytes(std::vector<uint8_t>{0x0f, 0xa2});  // cpuid
  auto mem = as.finalizeExecutable();
  ASSERT_TRUE(mem.ok());
  Interpreter interp;
  auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::UndecodableInstruction);
}

// ---- randomized straight-line differential testing -----------------------
//
// Generates random flag-safe straight-line programs over a few registers,
// executes them natively and through the interpreter, and compares the
// result. This cross-validates decoder, encoder, assembler, interpreter
// and the semantics helpers in one sweep.

class RandomProgram : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgram, InterpreterAgreesWithNative) {
  Prng rng(GetParam());
  const Reg pool[] = {Reg::rax, Reg::rcx, Reg::rdx, Reg::rsi, Reg::rdi,
                      Reg::r8, Reg::r9, Reg::r10, Reg::r11};

  for (int program = 0; program < 20; ++program) {
    jit::Assembler as;
    // Initialize all working registers from the two arguments.
    as.movRegReg(Reg::rax, Reg::rdi);
    as.movRegReg(Reg::rcx, Reg::rsi);
    as.movRegReg(Reg::rdx, Reg::rdi);
    as.movRegReg(Reg::r8, Reg::rsi);
    as.movRegReg(Reg::r9, Reg::rdi);
    as.movRegReg(Reg::r10, Reg::rsi);
    as.movRegReg(Reg::r11, Reg::rdi);

    const int len = 5 + static_cast<int>(rng.below(25));
    for (int i = 0; i < len; ++i) {
      const Reg dst = pool[rng.below(std::size(pool))];
      const Reg src = pool[rng.below(std::size(pool))];
      const uint8_t w = rng.chance(0.5) ? 8 : 4;
      switch (rng.below(7)) {
        case 0: as.aluRegReg(Mnemonic::Add, dst, src, w); break;
        case 1: as.aluRegReg(Mnemonic::Sub, dst, src, w); break;
        case 2: as.aluRegReg(Mnemonic::Xor, dst, src, w); break;
        case 3: as.aluRegImm(Mnemonic::And, dst,
                             static_cast<int64_t>(rng.next() & 0xFFFF), w);
          break;
        case 4:
          as.emit(makeInstr(Mnemonic::Imul, w, Operand::makeReg(dst),
                            Operand::makeReg(src)));
          break;
        case 5:
          as.emit(makeInstr(Mnemonic::Shl, w, Operand::makeReg(dst),
                            Operand::makeImm(rng.below(w * 8))));
          break;
        default: {
          isa::Instruction mz = makeInstr(Mnemonic::Movzx, 8,
                                          Operand::makeReg(dst),
                                          Operand::makeReg(src));
          mz.srcWidth = rng.chance(0.5) ? 1 : 2;
          as.emit(mz);
          break;
        }
      }
    }
    // Mix everything into rax.
    for (Reg r : {Reg::rcx, Reg::rdx, Reg::r8, Reg::r9, Reg::r10, Reg::r11})
      as.aluRegReg(Mnemonic::Add, Reg::rax, r);
    as.ret();

    auto mem = as.finalizeExecutable();
    ASSERT_TRUE(mem.ok()) << mem.error().message();
    auto fn = mem->entry<uint64_t (*)(uint64_t, uint64_t)>();

    Interpreter interp;
    const uint64_t a = rng.next(), b = rng.next();
    const uint64_t native = fn(a, b);
    const uint64_t args[] = {a, b};
    auto interpreted =
        interp.call(reinterpret_cast<uint64_t>(mem->data()), args);
    ASSERT_TRUE(interpreted.ok()) << interpreted.error().message();
    ASSERT_EQ(interpreted->intResult, native)
        << "seed " << GetParam() << " program " << program;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace brew::emu
