// Known-world-state unit tests: stack shadow byte tracking, StackRel slot
// spills, content identity/digests, and ABI clobber application.
#include <gtest/gtest.h>

#include "emu/known_state.hpp"

namespace brew::emu {
namespace {

using isa::Reg;

TEST(StackShadowTest, ByteGranularReadback) {
  StackShadow shadow;
  shadow.write(-16, 8, Value::known(0x1122334455667788ull));
  EXPECT_TRUE(shadow.read(-16, 8).isKnown());
  EXPECT_EQ(shadow.read(-16, 8).bits, 0x1122334455667788ull);
  // Partial reads assemble from bytes.
  EXPECT_EQ(shadow.read(-16, 4).bits, 0x55667788ull);
  EXPECT_EQ(shadow.read(-12, 4).bits, 0x11223344ull);
  EXPECT_EQ(shadow.read(-14, 2).bits, 0x5566ull);
  // Reads crossing into untracked bytes are unknown.
  EXPECT_TRUE(shadow.read(-18, 4).isUnknown());
  EXPECT_TRUE(shadow.read(-12, 8).isUnknown());
}

TEST(StackShadowTest, OverlappingWriteUpdatesBytes) {
  StackShadow shadow;
  shadow.write(-8, 8, Value::known(0xAAAAAAAAAAAAAAAAull));
  shadow.write(-6, 2, Value::known(0x1234));
  // Offset -6 is byte 2 of the qword at -8: bits 16..31.
  EXPECT_EQ(shadow.read(-8, 8).bits, 0xAAAAAAAA1234AAAAull);
}

TEST(StackShadowTest, UnknownWriteErasesKnowledge) {
  StackShadow shadow;
  shadow.write(-8, 8, Value::known(42));
  shadow.write(-8, 4, Value::unknown());
  EXPECT_TRUE(shadow.read(-8, 8).isUnknown());
  EXPECT_TRUE(shadow.read(-8, 4).isUnknown());
  EXPECT_TRUE(shadow.read(-4, 4).isKnown());  // upper half still known
}

TEST(StackShadowTest, StackRelSlotRoundTrip) {
  StackShadow shadow;
  shadow.write(-24, 8, Value::stackRel(-128, true));
  const Value v = shadow.read(-24, 8);
  ASSERT_TRUE(v.isStackRel());
  EXPECT_EQ(v.stackOffset(), -128);
  // Narrow reads of a pointer spill are unknown (no byte representation).
  EXPECT_TRUE(shadow.read(-24, 4).isUnknown());
}

TEST(StackShadowTest, OverlapKillsStackRelSlot) {
  StackShadow shadow;
  shadow.write(-24, 8, Value::stackRel(-128, true));
  shadow.write(-20, 1, Value::known(7));  // overlaps the slot
  EXPECT_TRUE(shadow.read(-24, 8).isUnknown());
}

TEST(StackShadowTest, ClobberBelow) {
  StackShadow shadow;
  shadow.write(-32, 8, Value::known(1));
  shadow.write(-16, 8, Value::known(2));
  shadow.write(-40, 8, Value::stackRel(0, true));
  shadow.clobberBelow(-16);
  EXPECT_TRUE(shadow.read(-32, 8).isUnknown());
  EXPECT_TRUE(shadow.read(-40, 8).isUnknown());
  EXPECT_TRUE(shadow.read(-16, 8).isKnown());
}

TEST(KnownWorldStateTest, InitialState) {
  KnownWorldState state;
  EXPECT_TRUE(state.gpr(Reg::rax).isUnknown());
  ASSERT_TRUE(state.gpr(Reg::rsp).isStackRel());
  EXPECT_EQ(state.gpr(Reg::rsp).stackOffset(), 0);
  EXPECT_TRUE(state.gpr(Reg::rsp).materialized);
  EXPECT_EQ(state.flags().known, 0);
  EXPECT_TRUE(state.flags().materialized);
}

TEST(KnownWorldStateTest, ContentIdentityIgnoresMaterialization) {
  KnownWorldState a, b;
  a.gpr(Reg::rbx) = Value::known(42, /*materialized=*/true);
  b.gpr(Reg::rbx) = Value::known(42, /*materialized=*/false);
  EXPECT_TRUE(a.sameContent(b));
  EXPECT_EQ(a.digest(), b.digest());
  b.gpr(Reg::rbx) = Value::known(43);
  EXPECT_FALSE(a.sameContent(b));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KnownWorldStateTest, DigestSensitivity) {
  KnownWorldState a, b;
  EXPECT_EQ(a.digest(), b.digest());
  b.xmm(Reg::xmm3).lo = Value::known(0x3FF0000000000000ull);
  EXPECT_NE(a.digest(), b.digest());

  KnownWorldState c, d;
  c.flags().setAll(isa::kFlagZF, isa::kFlagZF, false);
  EXPECT_NE(c.digest(), d.digest());

  KnownWorldState e, f;
  e.stack().write(-8, 8, Value::known(1));
  EXPECT_NE(e.digest(), f.digest());

  KnownWorldState g, h;
  g.callStack().push_back(CallFrame{0x1234, 0, 0, -8});
  EXPECT_NE(g.digest(), h.digest());
  EXPECT_FALSE(g.sameContent(h));
}

TEST(KnownWorldStateTest, CallClobbers) {
  KnownWorldState state;
  state.gpr(Reg::rax) = Value::known(1);
  state.gpr(Reg::rbx) = Value::known(2);   // callee-saved
  state.gpr(Reg::r12) = Value::known(3);   // callee-saved
  state.gpr(Reg::r10) = Value::known(4);   // caller-saved
  state.xmm(Reg::xmm5).lo = Value::known(5);
  state.flags().setAll(isa::kAllFlags, isa::kFlagZF, true);
  state.stack().write(-8, 8, Value::known(6));

  state.applyCallClobbers(/*clobberStack=*/false);
  EXPECT_TRUE(state.gpr(Reg::rax).isUnknown());
  EXPECT_TRUE(state.gpr(Reg::r10).isUnknown());
  EXPECT_TRUE(state.gpr(Reg::rbx).isKnown());
  EXPECT_TRUE(state.gpr(Reg::r12).isKnown());
  EXPECT_TRUE(state.xmm(Reg::xmm5).lo.isUnknown());
  EXPECT_EQ(state.flags().known, 0);
  EXPECT_TRUE(state.stack().read(-8, 8).isKnown());

  state.applyCallClobbers(/*clobberStack=*/true);
  EXPECT_TRUE(state.stack().read(-8, 8).isUnknown());
}

TEST(KnownWorldStateTest, RspSurvivesClobbers) {
  KnownWorldState state;
  state.gpr(Reg::rsp) = Value::stackRel(-64, true);
  state.applyCallClobbers(true);
  ASSERT_TRUE(state.gpr(Reg::rsp).isStackRel());
  EXPECT_EQ(state.gpr(Reg::rsp).stackOffset(), -64);
}

TEST(ValueTest, Helpers) {
  EXPECT_TRUE(Value::unknown().isUnknown());
  EXPECT_TRUE(Value::known(1).isKnown());
  EXPECT_TRUE(Value::stackRel(-8).isStackRel());
  EXPECT_TRUE(Value::known(5).sameContent(Value::known(5, false)));
  EXPECT_FALSE(Value::known(5).sameContent(Value::stackRel(5)));
  EXPECT_TRUE(Value::unknown().sameContent(Value::unknown()));
}

}  // namespace
}  // namespace brew::emu
