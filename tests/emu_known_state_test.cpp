// Known-world-state unit tests: stack shadow byte tracking, StackRel slot
// spills, content identity/digests, ABI clobber application, and
// randomized differential checks of the paged COW shadow against a
// per-byte reference model (the representation it replaced).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "emu/known_state.hpp"

namespace brew::emu {
namespace {

using isa::Reg;

TEST(StackShadowTest, ByteGranularReadback) {
  StackShadow shadow;
  shadow.write(-16, 8, Value::known(0x1122334455667788ull));
  EXPECT_TRUE(shadow.read(-16, 8).isKnown());
  EXPECT_EQ(shadow.read(-16, 8).bits, 0x1122334455667788ull);
  // Partial reads assemble from bytes.
  EXPECT_EQ(shadow.read(-16, 4).bits, 0x55667788ull);
  EXPECT_EQ(shadow.read(-12, 4).bits, 0x11223344ull);
  EXPECT_EQ(shadow.read(-14, 2).bits, 0x5566ull);
  // Reads crossing into untracked bytes are unknown.
  EXPECT_TRUE(shadow.read(-18, 4).isUnknown());
  EXPECT_TRUE(shadow.read(-12, 8).isUnknown());
}

TEST(StackShadowTest, OverlappingWriteUpdatesBytes) {
  StackShadow shadow;
  shadow.write(-8, 8, Value::known(0xAAAAAAAAAAAAAAAAull));
  shadow.write(-6, 2, Value::known(0x1234));
  // Offset -6 is byte 2 of the qword at -8: bits 16..31.
  EXPECT_EQ(shadow.read(-8, 8).bits, 0xAAAAAAAA1234AAAAull);
}

TEST(StackShadowTest, UnknownWriteErasesKnowledge) {
  StackShadow shadow;
  shadow.write(-8, 8, Value::known(42));
  shadow.write(-8, 4, Value::unknown());
  EXPECT_TRUE(shadow.read(-8, 8).isUnknown());
  EXPECT_TRUE(shadow.read(-8, 4).isUnknown());
  EXPECT_TRUE(shadow.read(-4, 4).isKnown());  // upper half still known
}

TEST(StackShadowTest, StackRelSlotRoundTrip) {
  StackShadow shadow;
  shadow.write(-24, 8, Value::stackRel(-128, true));
  const Value v = shadow.read(-24, 8);
  ASSERT_TRUE(v.isStackRel());
  EXPECT_EQ(v.stackOffset(), -128);
  // Narrow reads of a pointer spill are unknown (no byte representation).
  EXPECT_TRUE(shadow.read(-24, 4).isUnknown());
}

TEST(StackShadowTest, OverlapKillsStackRelSlot) {
  StackShadow shadow;
  shadow.write(-24, 8, Value::stackRel(-128, true));
  shadow.write(-20, 1, Value::known(7));  // overlaps the slot
  EXPECT_TRUE(shadow.read(-24, 8).isUnknown());
}

TEST(StackShadowTest, ClobberBelow) {
  StackShadow shadow;
  shadow.write(-32, 8, Value::known(1));
  shadow.write(-16, 8, Value::known(2));
  shadow.write(-40, 8, Value::stackRel(0, true));
  shadow.clobberBelow(-16);
  EXPECT_TRUE(shadow.read(-32, 8).isUnknown());
  EXPECT_TRUE(shadow.read(-40, 8).isUnknown());
  EXPECT_TRUE(shadow.read(-16, 8).isKnown());
}

TEST(KnownWorldStateTest, InitialState) {
  KnownWorldState state;
  EXPECT_TRUE(state.gpr(Reg::rax).isUnknown());
  ASSERT_TRUE(state.gpr(Reg::rsp).isStackRel());
  EXPECT_EQ(state.gpr(Reg::rsp).stackOffset(), 0);
  EXPECT_TRUE(state.gpr(Reg::rsp).materialized);
  EXPECT_EQ(state.flags().known, 0);
  EXPECT_TRUE(state.flags().materialized);
}

TEST(KnownWorldStateTest, ContentIdentityIgnoresMaterialization) {
  KnownWorldState a, b;
  a.gpr(Reg::rbx) = Value::known(42, /*materialized=*/true);
  b.gpr(Reg::rbx) = Value::known(42, /*materialized=*/false);
  EXPECT_TRUE(a.sameContent(b));
  EXPECT_EQ(a.digest(), b.digest());
  b.gpr(Reg::rbx) = Value::known(43);
  EXPECT_FALSE(a.sameContent(b));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KnownWorldStateTest, DigestSensitivity) {
  KnownWorldState a, b;
  EXPECT_EQ(a.digest(), b.digest());
  b.xmm(Reg::xmm3).lo = Value::known(0x3FF0000000000000ull);
  EXPECT_NE(a.digest(), b.digest());

  KnownWorldState c, d;
  c.flags().setAll(isa::kFlagZF, isa::kFlagZF, false);
  EXPECT_NE(c.digest(), d.digest());

  KnownWorldState e, f;
  e.stack().write(-8, 8, Value::known(1));
  EXPECT_NE(e.digest(), f.digest());

  KnownWorldState g, h;
  g.callStack().push_back(CallFrame{0x1234, 0, 0, -8});
  EXPECT_NE(g.digest(), h.digest());
  EXPECT_FALSE(g.sameContent(h));
}

TEST(KnownWorldStateTest, CallClobbers) {
  KnownWorldState state;
  state.gpr(Reg::rax) = Value::known(1);
  state.gpr(Reg::rbx) = Value::known(2);   // callee-saved
  state.gpr(Reg::r12) = Value::known(3);   // callee-saved
  state.gpr(Reg::r10) = Value::known(4);   // caller-saved
  state.xmm(Reg::xmm5).lo = Value::known(5);
  state.flags().setAll(isa::kAllFlags, isa::kFlagZF, true);
  state.stack().write(-8, 8, Value::known(6));

  state.applyCallClobbers(/*clobberStack=*/false);
  EXPECT_TRUE(state.gpr(Reg::rax).isUnknown());
  EXPECT_TRUE(state.gpr(Reg::r10).isUnknown());
  EXPECT_TRUE(state.gpr(Reg::rbx).isKnown());
  EXPECT_TRUE(state.gpr(Reg::r12).isKnown());
  EXPECT_TRUE(state.xmm(Reg::xmm5).lo.isUnknown());
  EXPECT_EQ(state.flags().known, 0);
  EXPECT_TRUE(state.stack().read(-8, 8).isKnown());

  state.applyCallClobbers(/*clobberStack=*/true);
  EXPECT_TRUE(state.stack().read(-8, 8).isUnknown());
}

TEST(KnownWorldStateTest, RspSurvivesClobbers) {
  KnownWorldState state;
  state.gpr(Reg::rsp) = Value::stackRel(-64, true);
  state.applyCallClobbers(true);
  ASSERT_TRUE(state.gpr(Reg::rsp).isStackRel());
  EXPECT_EQ(state.gpr(Reg::rsp).stackOffset(), -64);
}

TEST(ValueTest, Helpers) {
  EXPECT_TRUE(Value::unknown().isUnknown());
  EXPECT_TRUE(Value::known(1).isKnown());
  EXPECT_TRUE(Value::stackRel(-8).isStackRel());
  EXPECT_TRUE(Value::known(5).sameContent(Value::known(5, false)));
  EXPECT_FALSE(Value::known(5).sameContent(Value::stackRel(5)));
  EXPECT_TRUE(Value::unknown().sameContent(Value::unknown()));
}

// ---------------------------------------------------------------------------
// Differential testing of the paged copy-on-write shadow.
//
// RefShadow is the old representation: one map entry per known byte plus a
// side table of StackRel spills. It is deliberately naive — correctness by
// obviousness — and every StackShadow observation (read, isMaterialized,
// known-byte enumeration, content identity) must agree with it across
// randomized write/mark/clobber/fork sequences.

struct RefShadow {
  struct RefByte {
    uint8_t value = 0;
    bool materialized = true;
  };
  std::map<int64_t, RefByte> bytes;
  std::map<int64_t, Value> slots;

  void invalidateSlots(int64_t offset, unsigned width) {
    auto it = slots.lower_bound(offset - 7);
    while (it != slots.end() &&
           it->first < offset + static_cast<int64_t>(width))
      it = slots.erase(it);
  }
  void eraseBytes(int64_t offset, unsigned width) {
    for (unsigned i = 0; i < width; ++i)
      bytes.erase(offset + static_cast<int64_t>(i));
  }
  Value read(int64_t offset, unsigned width) const {
    if (width == 8) {
      if (auto it = slots.find(offset); it != slots.end()) return it->second;
    }
    uint64_t bits = 0;
    bool materialized = true;
    for (unsigned i = 0; i < width; ++i) {
      auto it = bytes.find(offset + static_cast<int64_t>(i));
      if (it == bytes.end()) return Value::unknown();
      if (8 * i < 64) bits |= static_cast<uint64_t>(it->second.value) << (8 * i);
      materialized = materialized && it->second.materialized;
    }
    return Value::known(bits, materialized);
  }
  bool isMaterialized(int64_t offset, unsigned width) const {
    if (width == 8) {
      if (auto it = slots.find(offset);
          it != slots.end() && !it->second.materialized)
        return false;
    }
    for (unsigned i = 0; i < width; ++i) {
      auto it = bytes.find(offset + static_cast<int64_t>(i));
      if (it != bytes.end() && !it->second.materialized) return false;
    }
    return true;
  }
  void write(int64_t offset, unsigned width, const Value& value) {
    invalidateSlots(offset, width);
    if (value.isStackRel()) {
      eraseBytes(offset, width);
      if (width == 8) slots[offset] = value;
      return;
    }
    if (!value.isKnown()) {
      eraseBytes(offset, width);
      return;
    }
    for (unsigned i = 0; i < width; ++i) {
      const unsigned shift = 8 * i;
      bytes[offset + static_cast<int64_t>(i)] = RefByte{
          shift < 64 ? static_cast<uint8_t>(value.bits >> shift) : uint8_t{0},
          value.materialized};
    }
  }
  void markMaterialized(int64_t offset, unsigned width) {
    for (unsigned i = 0; i < width; ++i) {
      auto it = bytes.find(offset + static_cast<int64_t>(i));
      if (it != bytes.end()) it->second.materialized = true;
    }
    if (width == 8) {
      if (auto it = slots.find(offset); it != slots.end())
        it->second.materialized = true;
    }
  }
  void clobber() {
    bytes.clear();
    slots.clear();
  }
  void clobberBelow(int64_t offset) {
    slots.erase(slots.begin(), slots.lower_bound(offset));
    bytes.erase(bytes.begin(), bytes.lower_bound(offset));
  }
  bool sameContent(const RefShadow& other) const {
    if (slots.size() != other.slots.size()) return false;
    for (auto a = slots.begin(), b = other.slots.begin(); a != slots.end();
         ++a, ++b) {
      if (a->first != b->first || !a->second.sameContent(b->second))
        return false;
    }
    if (bytes.size() != other.bytes.size()) return false;
    for (auto a = bytes.begin(), b = other.bytes.begin(); a != bytes.end();
         ++a, ++b) {
      // Materialization is a code-gen property, not content.
      if (a->first != b->first || a->second.value != b->second.value)
        return false;
    }
    return true;
  }
};

// One shadow and its reference, mutated in lock step.
struct ShadowPair {
  StackShadow real;
  RefShadow ref;

  void checkAt(int64_t offset, unsigned width) const {
    const Value got = real.read(offset, width);
    const Value want = ref.read(offset, width);
    ASSERT_TRUE(got.sameContent(want))
        << "read(" << offset << ", " << width << ") diverged";
    if (want.isKnown())
      ASSERT_EQ(got.materialized, want.materialized)
          << "materialization of read(" << offset << ", " << width << ")";
    ASSERT_EQ(real.isMaterialized(offset, width),
              ref.isMaterialized(offset, width))
        << "isMaterialized(" << offset << ", " << width << ") diverged";
  }

  // Full-surface agreement: enumeration matches the reference byte map and
  // the slot tables match exactly.
  void checkEnumeration() const {
    std::map<int64_t, RefShadow::RefByte> seen;
    real.forEachKnownByte([&seen](int64_t off, uint8_t value, bool mat) {
      seen[off] = RefShadow::RefByte{value, mat};
    });
    ASSERT_EQ(seen.size(), ref.bytes.size());
    for (const auto& [off, b] : ref.bytes) {
      auto it = seen.find(off);
      ASSERT_NE(it, seen.end()) << "missing known byte at " << off;
      ASSERT_EQ(it->second.value, b.value) << "byte value at " << off;
      ASSERT_EQ(it->second.materialized, b.materialized)
          << "byte materialization at " << off;
    }
    ASSERT_EQ(real.stackRelSlots().size(), ref.slots.size());
    for (const auto& [off, v] : real.stackRelSlots()) {
      auto it = ref.slots.find(off);
      ASSERT_NE(it, ref.slots.end()) << "unexpected slot at " << off;
      ASSERT_TRUE(v.sameContent(it->second)) << "slot value at " << off;
    }
  }
};

// Applies one random mutation to both members of the pair. Offsets cross
// page boundaries (the 256-byte page grid sits inside the ±2KiB range) and
// widths cover byte through XMM stores.
void randomMutation(std::mt19937& rng, ShadowPair& pair) {
  static constexpr unsigned kWidths[] = {1, 2, 4, 8, 16};
  const int64_t offset =
      static_cast<int64_t>(rng() % 4096) - 2048;
  const unsigned width = kWidths[rng() % 5];
  switch (rng() % 8) {
    case 0:
    case 1:
    case 2: {  // known write
      const Value v = Value::known(rng() | (uint64_t{rng()} << 32),
                                   (rng() & 1) != 0);
      pair.real.write(offset, width, v);
      pair.ref.write(offset, width, v);
      break;
    }
    case 3: {  // unknown write
      pair.real.write(offset, width, Value::unknown());
      pair.ref.write(offset, width, Value::unknown());
      break;
    }
    case 4: {  // StackRel spill
      const Value v = Value::stackRel(
          static_cast<int64_t>(rng() % 512) - 256, (rng() & 1) != 0);
      pair.real.write(offset, width, v);
      pair.ref.write(offset, width, v);
      break;
    }
    case 5: {
      pair.real.markMaterialized(offset, width);
      pair.ref.markMaterialized(offset, width);
      break;
    }
    case 6: {
      pair.real.clobberBelow(offset);
      pair.ref.clobberBelow(offset);
      break;
    }
    default: {  // rare full clobber
      if (rng() % 16 == 0) {
        pair.real.clobber();
        pair.ref.clobber();
      }
      break;
    }
  }
}

uint64_t shadowDigest(const StackShadow& shadow) {
  uint64_t hash = 0;
  shadow.addToDigest(hash);
  return hash;
}

TEST(StackShadowDifferential, RandomizedAgainstReferenceModel) {
  std::mt19937 rng(20260806);
  for (int round = 0; round < 20; ++round) {
    ShadowPair pair;
    for (int step = 0; step < 400; ++step) {
      randomMutation(rng, pair);
      // Spot-check reads around a random point every step, full
      // enumeration every 50th.
      const int64_t probe = static_cast<int64_t>(rng() % 4096) - 2048;
      for (unsigned width : {1u, 4u, 8u}) pair.checkAt(probe, width);
      if (step % 50 == 49) pair.checkEnumeration();
    }
    pair.checkEnumeration();
  }
}

TEST(StackShadowDifferential, ForkIsolationAndVariantKeys) {
  std::mt19937 rng(987654321);
  for (int round = 0; round < 10; ++round) {
    ShadowPair a;
    for (int step = 0; step < 120; ++step) randomMutation(rng, a);

    // Fork: the COW copy and the deep reference copy...
    ShadowPair b{StackShadow(a.real), a.ref};

    // ...must have identical content, identical digests (the variant key
    // input), and compare equal both ways.
    ASSERT_TRUE(a.real.sameContent(b.real));
    ASSERT_EQ(shadowDigest(a.real), shadowDigest(b.real));
    b.checkEnumeration();

    // Diverge both sides independently. Writes into one sibling must never
    // show through the shared pages of the other.
    for (int step = 0; step < 120; ++step) {
      randomMutation(rng, a);
      randomMutation(rng, b);
    }
    a.checkEnumeration();
    b.checkEnumeration();

    const bool refSame = a.ref.sameContent(b.ref);
    ASSERT_EQ(a.real.sameContent(b.real), refSame);
    ASSERT_EQ(b.real.sameContent(a.real), refSame);
    // Content identity and the digest must agree as variant keys. (With
    // fixed seeds this also pins digest inequality for distinct content;
    // any collision would be deterministic and visible here.)
    ASSERT_EQ(shadowDigest(a.real) == shadowDigest(b.real), refSame);
  }
}

TEST(StackShadowDifferential, MigrationRebuildPreservesContent) {
  // migrateToVariant rebuilds a state by re-adding every known byte and
  // spill slot; the rebuilt shadow must be content-identical and key to
  // the same digest.
  std::mt19937 rng(424242);
  for (int round = 0; round < 10; ++round) {
    ShadowPair a;
    for (int step = 0; step < 200; ++step) randomMutation(rng, a);

    StackShadow rebuilt;
    a.real.forEachKnownByte([&rebuilt](int64_t off, uint8_t value, bool mat) {
      rebuilt.write(off, 1, Value::known(value, mat));
    });
    for (const auto& [off, v] : a.real.stackRelSlots())
      rebuilt.write(off, 8, v);

    ASSERT_TRUE(rebuilt.sameContent(a.real));
    ASSERT_TRUE(a.real.sameContent(rebuilt));
    ASSERT_EQ(shadowDigest(rebuilt), shadowDigest(a.real));
  }
}

TEST(StackShadowDifferential, AssignmentReusesBuffersCorrectly) {
  // traceBlock copy-assigns the variant entry state into its working
  // state; assignment over a populated shadow must behave like a fresh
  // copy, not a merge.
  std::mt19937 rng(1357911);
  ShadowPair a, b;
  for (int step = 0; step < 150; ++step) {
    randomMutation(rng, a);
    randomMutation(rng, b);
  }
  b.real = a.real;
  b.ref = a.ref;
  b.checkEnumeration();
  ASSERT_EQ(shadowDigest(a.real), shadowDigest(b.real));
  // And the assigned-to copy is still COW-isolated from its source.
  for (int step = 0; step < 100; ++step) randomMutation(rng, b);
  a.checkEnumeration();
  b.checkEnumeration();
}

}  // namespace
}  // namespace brew::emu
