// Differential validation of the emulator's ALU semantics against the
// host CPU: for randomized operands, evalAlu/evalShift/evalImul/... must
// produce exactly the value and exactly the defined flags the hardware
// produces (we assemble the instruction, execute it natively, and read
// RFLAGS via pushfq).
#include <gtest/gtest.h>

#include <cstring>

#include "emu/semantics.hpp"
#include "emu/value.hpp"
#include "jit/assembler.hpp"
#include "support/prng.hpp"

namespace brew::emu {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

// RFLAGS bit positions in the hardware register.
constexpr uint64_t kHwCF = 1ull << 0;
constexpr uint64_t kHwPF = 1ull << 2;
constexpr uint64_t kHwAF = 1ull << 4;
constexpr uint64_t kHwZF = 1ull << 6;
constexpr uint64_t kHwSF = 1ull << 7;
constexpr uint64_t kHwOF = 1ull << 11;

uint8_t packHwFlags(uint64_t rflags) {
  uint8_t f = 0;
  if (rflags & kHwCF) f |= isa::kFlagCF;
  if (rflags & kHwPF) f |= isa::kFlagPF;
  if (rflags & kHwAF) f |= isa::kFlagAF;
  if (rflags & kHwZF) f |= isa::kFlagZF;
  if (rflags & kHwSF) f |= isa::kFlagSF;
  if (rflags & kHwOF) f |= isa::kFlagOF;
  return f;
}

struct NativeResult {
  uint64_t value;
  uint8_t flags;
};

// Executes "op dst, src" natively with the given operand values and
// returns the result register and flags. `cfIn` seeds the carry flag.
NativeResult runNative(Mnemonic mn, unsigned width, uint64_t a, uint64_t b,
                       bool cfIn) {
  jit::Assembler as;
  // rdi = a, rsi = b, rdx = out flags pointer
  as.movRegReg(Reg::rax, Reg::rdi);
  // Seed CF: bt/stc are not in the subset; emulate with add of -1/0:
  // cmp r11, r11 sets CF=0; to set CF=1: mov r11,1; cmp r10,r11 with r10=0.
  if (cfIn) {
    as.movRegImm(Reg::r10, 0);
    as.movRegImm(Reg::r11, 1);
    as.aluRegReg(Mnemonic::Cmp, Reg::r10, Reg::r11);  // 0 < 1 -> CF=1
  } else {
    as.aluRegReg(Mnemonic::Cmp, Reg::r10, Reg::r10);  // CF=0
  }
  as.emit(makeInstr(mn, static_cast<uint8_t>(width),
                    Operand::makeReg(Reg::rax), Operand::makeReg(Reg::rsi)));
  as.emit(makeInstr(Mnemonic::Pushfq, 8));
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rcx)));
  as.movMemReg(isa::MemOperand{.base = Reg::rdx}, Reg::rcx, 8);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  uint64_t rflags = 0;
  auto fn = mem->entry<uint64_t (*)(uint64_t, uint64_t, uint64_t*)>();
  const uint64_t value = fn(a, b, &rflags);
  return {value, packHwFlags(rflags)};
}

NativeResult runNativeUnary(Mnemonic mn, unsigned width, uint64_t a) {
  jit::Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.aluRegReg(Mnemonic::Cmp, Reg::r10, Reg::r10);  // deterministic flags in
  as.emit(makeInstr(mn, static_cast<uint8_t>(width),
                    Operand::makeReg(Reg::rax)));
  as.emit(makeInstr(Mnemonic::Pushfq, 8));
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rcx)));
  as.movMemReg(isa::MemOperand{.base = Reg::rsi}, Reg::rcx, 8);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  uint64_t rflags = 0;
  auto fn = mem->entry<uint64_t (*)(uint64_t, uint64_t*)>();
  const uint64_t value = fn(a, &rflags);
  return {value, packHwFlags(rflags)};
}

NativeResult runNativeShift(Mnemonic mn, unsigned width, uint64_t a,
                            uint8_t count) {
  jit::Assembler as;
  as.movRegReg(Reg::rax, Reg::rdi);
  as.aluRegReg(Mnemonic::Cmp, Reg::r10, Reg::r10);
  as.emit(makeInstr(mn, static_cast<uint8_t>(width),
                    Operand::makeReg(Reg::rax), Operand::makeImm(count)));
  as.emit(makeInstr(Mnemonic::Pushfq, 8));
  as.emit(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(Reg::rcx)));
  as.movMemReg(isa::MemOperand{.base = Reg::rsi}, Reg::rcx, 8);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  uint64_t rflags = 0;
  auto fn = mem->entry<uint64_t (*)(uint64_t, uint64_t*)>();
  const uint64_t value = fn(a, &rflags);
  return {value, packHwFlags(rflags)};
}

class AluDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AluDifferential, MatchesHardware) {
  Prng rng(GetParam());
  const Mnemonic ops[] = {Mnemonic::Add, Mnemonic::Adc, Mnemonic::Sub,
                          Mnemonic::Sbb, Mnemonic::Cmp, Mnemonic::And,
                          Mnemonic::Or, Mnemonic::Xor, Mnemonic::Test};
  const unsigned widths[] = {4, 8};
  const uint64_t interesting[] = {
      0, 1, 2, 0x7F, 0x80, 0xFF, 0x7FFF, 0x8000, 0x7FFFFFFF, 0x80000000,
      0xFFFFFFFF, 0x7FFFFFFFFFFFFFFFull, 0x8000000000000000ull,
      0xFFFFFFFFFFFFFFFFull};

  for (int i = 0; i < 120; ++i) {
    const Mnemonic mn = ops[rng.below(std::size(ops))];
    const unsigned w = widths[rng.below(2)];
    const uint64_t a = rng.chance(0.4)
                           ? interesting[rng.below(std::size(interesting))]
                           : rng.next();
    const uint64_t b = rng.chance(0.4)
                           ? interesting[rng.below(std::size(interesting))]
                           : rng.next();
    const bool cf = rng.chance(0.5);

    const OpResult mine = evalAlu(mn, w, a, b, cf);
    const NativeResult hw = runNative(mn, w, a, b, cf);

    if (mn != Mnemonic::Cmp && mn != Mnemonic::Test) {
      // Native result register has width-merge semantics applied.
      const uint64_t expected = mergeWrite(a, mine.value, w);
      ASSERT_EQ(hw.value, expected)
          << isa::mnemonicName(mn) << " w=" << w << " a=" << a << " b=" << b;
    }
    ASSERT_EQ(hw.flags & mine.flagsKnown, mine.flagsValue & mine.flagsKnown)
        << isa::mnemonicName(mn) << " w=" << w << " a=" << a << " b=" << b
        << " cf=" << cf;
  }
}

TEST_P(AluDifferential, UnaryMatchesHardware) {
  Prng rng(GetParam() * 31 + 7);
  const Mnemonic ops[] = {Mnemonic::Not, Mnemonic::Neg, Mnemonic::Inc,
                          Mnemonic::Dec};
  for (int i = 0; i < 60; ++i) {
    const Mnemonic mn = ops[rng.below(std::size(ops))];
    const unsigned w = rng.chance(0.5) ? 4 : 8;
    const uint64_t a = rng.chance(0.3) ? (rng.chance(0.5) ? 0 : ~0ull)
                                       : rng.next();
    const OpResult mine = evalUnary(mn, w, a);
    const NativeResult hw = runNativeUnary(mn, w, a);
    ASSERT_EQ(hw.value, mergeWrite(a, mine.value, w))
        << isa::mnemonicName(mn) << " w=" << w << " a=" << a;
    ASSERT_EQ(hw.flags & mine.flagsKnown, mine.flagsValue & mine.flagsKnown)
        << isa::mnemonicName(mn) << " w=" << w << " a=" << a;
  }
}

TEST_P(AluDifferential, ShiftsMatchHardware) {
  Prng rng(GetParam() * 1299721 + 3);
  const Mnemonic ops[] = {Mnemonic::Shl, Mnemonic::Shr, Mnemonic::Sar,
                          Mnemonic::Rol, Mnemonic::Ror};
  for (int i = 0; i < 80; ++i) {
    const Mnemonic mn = ops[rng.below(std::size(ops))];
    const unsigned w = rng.chance(0.5) ? 4 : 8;
    const uint64_t a = rng.next();
    const uint8_t count = static_cast<uint8_t>(rng.below(70));
    const OpResult mine = evalShift(mn, w, a, count);
    const NativeResult hw = runNativeShift(mn, w, a, count);
    const unsigned masked = count & (w == 8 ? 63 : 31);
    ASSERT_EQ(hw.value, mergeWrite(a, mine.value, w))
        << isa::mnemonicName(mn) << " w=" << w << " a=" << a
        << " count=" << static_cast<int>(count);
    if (masked != 0) {
      ASSERT_EQ(hw.flags & mine.flagsKnown,
                mine.flagsValue & mine.flagsKnown)
          << isa::mnemonicName(mn) << " w=" << w << " a=" << a
          << " count=" << static_cast<int>(count);
    }
  }
}

TEST_P(AluDifferential, ImulMatchesHardware) {
  Prng rng(GetParam() * 97 + 11);
  for (int i = 0; i < 60; ++i) {
    const unsigned w = rng.chance(0.5) ? 4 : 8;
    const uint64_t a = rng.next();
    const uint64_t b = rng.chance(0.5) ? rng.next()
                                       : rng.below(1000);
    const OpResult mine = evalImul(w, a, b);
    const NativeResult hw = runNative(Mnemonic::Imul, w, a, b, false);
    ASSERT_EQ(hw.value, mergeWrite(a, mine.value, w)) << "w=" << w;
    ASSERT_EQ(hw.flags & mine.flagsKnown, mine.flagsValue & mine.flagsKnown)
        << "w=" << w << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Semantics, DivBasics) {
  DivResult r = evalDiv(true, 8, 0, 100, 7);
  EXPECT_FALSE(r.fault);
  EXPECT_EQ(r.quotient, 14u);
  EXPECT_EQ(r.remainder, 2u);

  r = evalDiv(true, 8, ~0ull, static_cast<uint64_t>(-100), 7);  // -100 / 7
  EXPECT_FALSE(r.fault);
  EXPECT_EQ(static_cast<int64_t>(r.quotient), -14);
  EXPECT_EQ(static_cast<int64_t>(r.remainder), -2);

  r = evalDiv(true, 8, 0, 1, 0);  // divide by zero
  EXPECT_TRUE(r.fault);

  // Quotient overflow: INT64_MIN / -1
  r = evalDiv(true, 8, 0xFFFFFFFFFFFFFFFFull, 0x8000000000000000ull,
              static_cast<uint64_t>(-1));
  EXPECT_TRUE(r.fault);

  r = evalDiv(false, 4, 1, 0, 2);  // (1<<32) / 2 = 1<<31 fits u32
  EXPECT_FALSE(r.fault);
  EXPECT_EQ(r.quotient, 0x80000000u);
}

TEST(Semantics, WideMul) {
  WideMulResult r = evalWideMul(false, 8, ~0ull, ~0ull);
  EXPECT_EQ(r.lo, 1u);
  EXPECT_EQ(r.hi, 0xFFFFFFFFFFFFFFFEull);
  EXPECT_TRUE(r.flagsValue & isa::kFlagCF);

  r = evalWideMul(true, 8, static_cast<uint64_t>(-3), 5);
  EXPECT_EQ(static_cast<int64_t>(r.lo), -15);
  EXPECT_EQ(r.hi, ~0ull);  // sign extension
  EXPECT_FALSE(r.flagsValue & isa::kFlagCF);

  r = evalWideMul(false, 4, 0x10000, 0x10000);  // 2^32: hi=1, lo=0
  EXPECT_EQ(r.lo, 0u);
  EXPECT_EQ(r.hi, 1u);
}

TEST(Semantics, FpScalar) {
  auto bits = [](double d) {
    uint64_t b;
    std::memcpy(&b, &d, 8);
    return b;
  };
  auto val = [](uint64_t b) {
    double d;
    std::memcpy(&d, &b, 8);
    return d;
  };
  EXPECT_DOUBLE_EQ(
      val(evalFpScalar(isa::Mnemonic::Addsd, 8, bits(1.5), bits(2.25))),
      3.75);
  EXPECT_DOUBLE_EQ(
      val(evalFpScalar(isa::Mnemonic::Mulsd, 8, bits(3.0), bits(-2.0))),
      -6.0);
  EXPECT_DOUBLE_EQ(
      val(evalFpScalar(isa::Mnemonic::Divsd, 8, bits(1.0), bits(8.0))),
      0.125);
  EXPECT_DOUBLE_EQ(
      val(evalFpScalar(isa::Mnemonic::Sqrtsd, 8, 0, bits(9.0))), 3.0);
  EXPECT_DOUBLE_EQ(
      val(evalFpScalar(isa::Mnemonic::Minsd, 8, bits(2.0), bits(-1.0))),
      -1.0);
  EXPECT_DOUBLE_EQ(
      val(evalFpScalar(isa::Mnemonic::Maxsd, 8, bits(2.0), bits(-1.0))),
      2.0);
}

TEST(Semantics, FpCompareFlags) {
  auto bits = [](double d) {
    uint64_t b;
    std::memcpy(&b, &d, 8);
    return b;
  };
  OpResult r = evalFpCompare(8, bits(1.0), bits(2.0));  // a < b
  EXPECT_TRUE(r.flagsValue & isa::kFlagCF);
  EXPECT_FALSE(r.flagsValue & isa::kFlagZF);

  r = evalFpCompare(8, bits(2.0), bits(2.0));
  EXPECT_TRUE(r.flagsValue & isa::kFlagZF);
  EXPECT_FALSE(r.flagsValue & isa::kFlagCF);

  r = evalFpCompare(8, bits(3.0), bits(2.0));
  EXPECT_EQ(r.flagsValue & (isa::kFlagZF | isa::kFlagCF | isa::kFlagPF), 0);

  const uint64_t nan = 0x7FF8000000000001ull;
  r = evalFpCompare(8, nan, bits(2.0));  // unordered
  EXPECT_TRUE(r.flagsValue & isa::kFlagPF);
  EXPECT_TRUE(r.flagsValue & isa::kFlagZF);
  EXPECT_TRUE(r.flagsValue & isa::kFlagCF);
}

TEST(Semantics, Conversions) {
  EXPECT_EQ(evalCvtFpToInt(4, 8, evalCvtIntToFp(8, 4, 42)), 42u);
  EXPECT_EQ(static_cast<int64_t>(
                evalCvtFpToInt(8, 8, evalCvtIntToFp(8, 8,
                                                    static_cast<uint64_t>(
                                                        -123456789)))),
            -123456789);
  // Truncation toward zero.
  double d = 2.9;
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  EXPECT_EQ(evalCvtFpToInt(4, 8, bits), 2u);
  d = -2.9;
  std::memcpy(&bits, &d, 8);
  EXPECT_EQ(static_cast<int32_t>(evalCvtFpToInt(4, 8, bits)), -2);
  // Out of range: integer indefinite.
  d = 1e30;
  std::memcpy(&bits, &d, 8);
  EXPECT_EQ(evalCvtFpToInt(4, 8, bits), 0x80000000u);
}

TEST(Semantics, CondEvaluation) {
  // ZF=1 -> e taken, ne not.
  EXPECT_TRUE(evalCond(Cond::E, isa::kFlagZF));
  EXPECT_FALSE(evalCond(Cond::NE, isa::kFlagZF));
  // SF != OF -> l taken.
  EXPECT_TRUE(evalCond(Cond::L, isa::kFlagSF));
  EXPECT_FALSE(evalCond(Cond::L, isa::kFlagSF | isa::kFlagOF));
  EXPECT_TRUE(evalCond(Cond::GE, 0));
  // Unsigned: CF -> b.
  EXPECT_TRUE(evalCond(Cond::B, isa::kFlagCF));
  EXPECT_TRUE(evalCond(Cond::BE, isa::kFlagZF));
  EXPECT_TRUE(evalCond(Cond::A, 0));
  EXPECT_FALSE(evalCond(Cond::A, isa::kFlagCF));
}

TEST(Semantics, ValueWidthHelpers) {
  EXPECT_EQ(zeroExtend(0xFFFFFFFFFFFFFFFFull, 4), 0xFFFFFFFFull);
  EXPECT_EQ(signExtend(0x80, 1), 0xFFFFFFFFFFFFFF80ull);
  EXPECT_EQ(signExtend(0x7F, 1), 0x7Full);
  EXPECT_EQ(mergeWrite(0x1122334455667788ull, 0xAB, 1),
            0x11223344556677ABull);
  EXPECT_EQ(mergeWrite(0x1122334455667788ull, 0xAABB, 2),
            0x112233445566AABBull);
  EXPECT_EQ(mergeWrite(0x1122334455667788ull, 0xDDCCBBAA, 4),
            0x00000000DDCCBBAAull);
}

}  // namespace
}  // namespace brew::emu
