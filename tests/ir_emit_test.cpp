// IR emission tests: block layout (fall-through chaining), intra-function
// relocation, literal pool placement and RIP-relative pool references.
#include <gtest/gtest.h>

#include <cstring>

#include "emu/interpreter.hpp"
#include "ir/captured.hpp"

namespace brew::ir {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

TEST(Layout, FallThroughChainsFollowCondJumps) {
  CapturedFunction fn;
  const int a = fn.newBlock(1, 0);
  const int b = fn.newBlock(2, 0);
  const int c = fn.newBlock(3, 0);
  fn.block(a).term = {Terminator::Kind::CondJmp, Cond::E, c, b};
  fn.block(b).term = {Terminator::Kind::Ret, Cond::O, -1, -1};
  fn.block(c).term = {Terminator::Kind::Ret, Cond::O, -1, -1};
  const std::vector<int> order = layoutOrder(fn);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], b);  // fall-through side placed next
  EXPECT_EQ(order[2], c);
}

TEST(Layout, JumpTargetChainedWhenFree) {
  CapturedFunction fn;
  const int a = fn.newBlock(1, 0);
  const int b = fn.newBlock(2, 0);
  fn.block(a).term = {Terminator::Kind::Jmp, Cond::O, b, -1};
  fn.block(b).term = {Terminator::Kind::Ret, Cond::O, -1, -1};
  const std::vector<int> order = layoutOrder(fn);
  EXPECT_EQ(order, (std::vector<int>{a, b}));
}

TEST(Emit, BranchRelocationExecutes) {
  // if (rdi == 0) return 1; else return 2;  — three blocks.
  CapturedFunction fn;
  const int head = fn.newBlock(1, 0);
  const int zero = fn.newBlock(2, 0);
  const int nonzero = fn.newBlock(3, 0);
  fn.setEntry(head);
  fn.block(head).instrs = {makeInstr(Mnemonic::Test, 8,
                                     Operand::makeReg(Reg::rdi),
                                     Operand::makeReg(Reg::rdi))};
  fn.block(head).term = {Terminator::Kind::CondJmp, Cond::E, zero, nonzero};
  fn.block(zero).instrs = {makeInstr(Mnemonic::Mov, 8,
                                     Operand::makeReg(Reg::rax),
                                     Operand::makeImm(1))};
  fn.block(zero).term.kind = Terminator::Kind::Ret;
  fn.block(nonzero).instrs = {makeInstr(Mnemonic::Mov, 8,
                                        Operand::makeReg(Reg::rax),
                                        Operand::makeImm(2))};
  fn.block(nonzero).term.kind = Terminator::Kind::Ret;

  auto mem = emit(fn, 1 << 16);
  ASSERT_TRUE(mem.ok()) << mem.error().message();
  auto f = mem->entry<int64_t (*)(int64_t)>();
  EXPECT_EQ(f(0), 1);
  EXPECT_EQ(f(7), 2);
  EXPECT_EQ(f(-7), 2);
}

TEST(Emit, LoopBackedge) {
  // rax = 0; do { rax += rdi; rdi -= 1; } while (rdi != 0); ret
  CapturedFunction fn;
  const int head = fn.newBlock(1, 0);
  const int body = fn.newBlock(2, 0);
  const int exit = fn.newBlock(3, 0);
  fn.setEntry(head);
  fn.block(head).instrs = {makeInstr(Mnemonic::Mov, 8,
                                     Operand::makeReg(Reg::rax),
                                     Operand::makeImm(0))};
  fn.block(head).term = {Terminator::Kind::Jmp, Cond::O, body, -1};
  fn.block(body).instrs = {
      makeInstr(Mnemonic::Add, 8, Operand::makeReg(Reg::rax),
                Operand::makeReg(Reg::rdi)),
      makeInstr(Mnemonic::Sub, 8, Operand::makeReg(Reg::rdi),
                Operand::makeImm(1)),
  };
  fn.block(body).term = {Terminator::Kind::CondJmp, Cond::NE, body, exit};
  fn.block(exit).term.kind = Terminator::Kind::Ret;

  auto mem = emit(fn, 1 << 16);
  ASSERT_TRUE(mem.ok());
  auto f = mem->entry<int64_t (*)(int64_t)>();
  EXPECT_EQ(f(4), 4 + 3 + 2 + 1);
  EXPECT_EQ(f(1), 1);
}

TEST(Emit, PoolReferencesResolve) {
  CapturedFunction fn;
  const int id = fn.newBlock(1, 0);
  fn.setEntry(id);
  double v = 2.75;
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  const int slot0 = fn.addPoolConstant(bits);
  v = -1.5;
  std::memcpy(&bits, &v, 8);
  const int slot1 = fn.addPoolConstant(bits);
  MemOperand p0;
  p0.ripRelative = true;
  p0.poolSlot = slot0;
  MemOperand p1;
  p1.ripRelative = true;
  p1.poolSlot = slot1;
  fn.block(id).instrs = {
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm0),
                Operand::makeMem(p0)),
      makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm0),
                Operand::makeMem(p1)),
  };
  fn.block(id).term.kind = Terminator::Kind::Ret;

  auto mem = emit(fn, 1 << 16);
  ASSERT_TRUE(mem.ok()) << mem.error().message();
  auto f = mem->entry<double (*)()>();
  EXPECT_DOUBLE_EQ(f(), 1.25);
}

TEST(Emit, PoolDeduplicates) {
  CapturedFunction fn;
  EXPECT_EQ(fn.addPoolConstant(42), 0);
  EXPECT_EQ(fn.addPoolConstant(43), 1);
  EXPECT_EQ(fn.addPoolConstant(42), 0);
  EXPECT_EQ(fn.addPoolConstant(42, 1), 2);  // different high half
}

TEST(Emit, CodeBudgetEnforced) {
  CapturedFunction fn;
  const int id = fn.newBlock(1, 0);
  fn.setEntry(id);
  for (int i = 0; i < 100; ++i)
    fn.block(id).instrs.push_back(
        makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rax),
                  Operand::makeImm(0x123456789ALL)));
  fn.block(id).term.kind = Terminator::Kind::Ret;
  auto mem = emit(fn, 64);
  ASSERT_FALSE(mem.ok());
  EXPECT_EQ(mem.error().code, ErrorCode::CodeBufferFull);
}

TEST(Emit, MissingTerminatorRejected) {
  CapturedFunction fn;
  fn.newBlock(1, 0);
  auto mem = emit(fn, 1 << 16);
  ASSERT_FALSE(mem.ok());
  EXPECT_EQ(mem.error().code, ErrorCode::InvalidArgument);
}

TEST(Emit, EmptyFunctionRejected) {
  CapturedFunction fn;
  auto mem = emit(fn, 1 << 16);
  ASSERT_FALSE(mem.ok());
}

TEST(Emit, InterpreterRunsEmittedCode) {
  // The same emitted buffer must execute identically under the
  // interpreter (portable path).
  CapturedFunction fn;
  const int id = fn.newBlock(1, 0);
  fn.setEntry(id);
  fn.block(id).instrs = {
      makeInstr(Mnemonic::Lea, 8, Operand::makeReg(Reg::rax),
                Operand::makeMem(MemOperand{.base = Reg::rdi,
                                            .index = Reg::rsi,
                                            .scale = 2,
                                            .disp = 5})),
  };
  fn.block(id).term.kind = Terminator::Kind::Ret;
  auto mem = emit(fn, 1 << 16);
  ASSERT_TRUE(mem.ok());
  auto f = mem->entry<uint64_t (*)(uint64_t, uint64_t)>();
  EXPECT_EQ(f(10, 4), 10 + 8 + 5u);

  emu::Interpreter interp;
  const uint64_t args[] = {10, 4};
  auto result = interp.call(reinterpret_cast<uint64_t>(mem->data()), args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intResult, 23u);
}

}  // namespace
}  // namespace brew::ir
