// Decode-cache invalidation: cached decodes must never outlive the bytes
// they were decoded from. Code mutates through exactly two doors —
// ExecMemory::makeWritable() (in-place patching) and mapping release with
// address reuse — and both bump the code-mutation epoch the cache polls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/rewriter.hpp"
#include "isa/decode_cache.hpp"
#include "jit/assembler.hpp"
#include "support/exec_memory.hpp"

namespace brew {
namespace {

using isa::Mnemonic;
using isa::Reg;

// Builds `mov eax, imm32; ret` into exec memory via the assembler.
ExecMemory makeConstFn(int32_t imm) {
  jit::Assembler as;
  as.movRegImm(Reg::rax, imm, 4);
  as.ret();
  auto mem = as.finalizeExecutable();
  EXPECT_TRUE(mem.ok());
  return std::move(*mem);
}

int64_t decodedImmAt(uint64_t address) {
  auto decoded = isa::decodeCachedAt(address);
  if (!decoded.ok() || !(*decoded)->op(1).isImm()) return INT64_MIN;
  return (*decoded)->op(1).imm;
}

TEST(DecodeCache, RepeatDecodesHitTheCache) {
  ExecMemory fn = makeConstFn(7);
  const auto addr = reinterpret_cast<uint64_t>(fn.data());
  ASSERT_EQ(decodedImmAt(addr), 7);
  const uint64_t hitsBefore = isa::decodeCacheThreadStats().hits;
  ASSERT_EQ(decodedImmAt(addr), 7);
  EXPECT_GT(isa::decodeCacheThreadStats().hits, hitsBefore);
}

TEST(DecodeCache, PatchThroughMakeWritableInvalidates) {
  ExecMemory fn = makeConstFn(111);
  const auto addr = reinterpret_cast<uint64_t>(fn.data());
  ASSERT_EQ(decodedImmAt(addr), 111);
  ASSERT_EQ(fn.entry<int32_t (*)()>()(), 111);

  // Patch the mov immediate in place: mov eax, imm32 is b8 ii ii ii ii.
  ASSERT_TRUE(fn.makeWritable().ok());
  const int32_t patched = 222;
  std::memcpy(fn.writeView() + 1, &patched, sizeof patched);
  ASSERT_TRUE(fn.finalize().ok());

  EXPECT_EQ(decodedImmAt(addr), 222) << "stale decode served after patch";
  EXPECT_EQ(fn.entry<int32_t (*)()>()(), 222);
}

TEST(DecodeCache, AddressReuseAfterFreeInvalidates) {
  // Drop-and-reallocate until an address repeats (the release pool makes
  // this happen on the first try; a few rounds guard against pool misses).
  for (int attempt = 0; attempt < 8; ++attempt) {
    ExecMemory first = makeConstFn(1000 + attempt);
    const auto addr = reinterpret_cast<uint64_t>(first.data());
    ASSERT_EQ(decodedImmAt(addr), 1000 + attempt);
    first = ExecMemory();  // release: epoch bump + possible pool park

    ExecMemory second = makeConstFn(2000 + attempt);
    if (reinterpret_cast<uint64_t>(second.data()) != addr) continue;
    EXPECT_EQ(decodedImmAt(addr), 2000 + attempt)
        << "stale decode served from a recycled address";
    return;
  }
  GTEST_SKIP() << "allocator never reused an address";
}

// The A3 composability path: generated code is itself the subject of the
// next rewrite, so stage 2 must trace the stage-1 bytes actually installed
// now, never a cached decode of what a previous occupant of the address
// looked like.
__attribute__((noinline)) int64_t affine(int64_t a, int64_t b, int64_t x) {
  return a * x + b;
}

TEST(DecodeCache, RecursiveRewriteTracesFreshStageOneBytes) {
  using fn_t = int64_t (*)(int64_t, int64_t, int64_t);
  for (int round = 0; round < 3; ++round) {
    // Stage 1: bake a and b. Different values each round, so if stage 2
    // ever decoded stale stage-1 bytes the results would disagree.
    const int64_t a = 3 + round, b = 40 - round;
    Config c1;
    c1.setParamKnown(0);
    c1.setParamKnown(1);
    Rewriter r1{c1};
    auto stage1 = r1.rewrite(reinterpret_cast<const void*>(&affine), a, b,
                             int64_t{0});
    ASSERT_TRUE(stage1.ok()) << stage1.error().message();
    ASSERT_EQ(stage1->as<fn_t>()(0, 0, 5), a * 5 + b);

    // Stage 2: rewrite the stage-1 output, baking x too.
    Config c2;
    c2.setParamKnown(2);
    Rewriter r2{c2};
    auto stage2 =
        r2.rewrite(stage1->entry(), int64_t{0}, int64_t{0}, int64_t{7});
    ASSERT_TRUE(stage2.ok()) << stage2.error().message();
    EXPECT_EQ(stage2->as<fn_t>()(0, 0, 0), a * 7 + b);
    // Handles drop here; the next round's stage 1 may land on the same
    // addresses with different constants baked in.
  }
}

// 8 threads rewriting and freeing concurrently: thread-local caches, a
// shared mutation ring, and recycled addresses. Run under the concurrency
// label (and TSan via check_telemetry_tsan's -L concurrency pass).
TEST(DecodeCacheConcurrency, EightThreadRewriteFreeHammer) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      for (int i = 0; i < kRounds; ++i) {
        const int32_t imm = t * 1000 + i;
        ExecMemory fn = makeConstFn(imm);
        const auto addr = reinterpret_cast<uint64_t>(fn.data());
        if (decodedImmAt(addr) != imm) failures.fetch_add(1);
        if (fn.entry<int32_t (*)()>()() != imm) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace brew
