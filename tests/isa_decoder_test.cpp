// Decoder unit tests: known byte sequences (cross-checked against binutils
// objdump output) must decode to the expected instruction.
#include <gtest/gtest.h>

#include <vector>

#include "isa/decoder.hpp"
#include "isa/printer.hpp"

namespace brew::isa {
namespace {

Instruction decodeOk(std::initializer_list<uint8_t> bytes,
                     uint64_t address = 0x1000) {
  std::vector<uint8_t> buf(bytes);
  auto result = decodeOne(buf, address);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message());
  if (!result.ok()) return Instruction{};
  EXPECT_EQ(result->length, buf.size()) << toString(*result);
  return *result;
}

TEST(Decoder, MovRegReg64) {
  // 49 89 f8   mov r8, rdi
  const Instruction instr = decodeOk({0x49, 0x89, 0xf8});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Mov);
  EXPECT_EQ(instr.width, 8);
  EXPECT_EQ(instr.ops[0].reg, Reg::r8);
  EXPECT_EQ(instr.ops[1].reg, Reg::rdi);
}

TEST(Decoder, MovsxdLoad) {
  // 48 63 3a   movsxd rdi, dword ptr [rdx]
  const Instruction instr = decodeOk({0x48, 0x63, 0x3a});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Movsxd);
  EXPECT_EQ(instr.width, 8);
  EXPECT_EQ(instr.ops[0].reg, Reg::rdi);
  ASSERT_TRUE(instr.ops[1].isMem());
  EXPECT_EQ(instr.ops[1].mem.base, Reg::rdx);
  EXPECT_EQ(instr.ops[1].mem.disp, 0);
}

TEST(Decoder, TestRegReg32) {
  // 85 ff      test edi, edi
  const Instruction instr = decodeOk({0x85, 0xff});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Test);
  EXPECT_EQ(instr.width, 4);
  EXPECT_EQ(instr.ops[0].reg, Reg::rdi);
  EXPECT_EQ(instr.ops[1].reg, Reg::rdi);
}

TEST(Decoder, JleRel8) {
  // 7e 46      jle +0x46 (target = addr + 2 + 0x46)
  const Instruction instr = decodeOk({0x7e, 0x46});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Jcc);
  EXPECT_EQ(instr.cond, Cond::LE);
  EXPECT_EQ(instr.ops[0].imm, 0x1000 + 2 + 0x46);
}

TEST(Decoder, ShlImm) {
  // 48 c1 e7 04   shl rdi, 4
  const Instruction instr = decodeOk({0x48, 0xc1, 0xe7, 0x04});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Shl);
  EXPECT_EQ(instr.width, 8);
  EXPECT_EQ(instr.ops[0].reg, Reg::rdi);
  EXPECT_EQ(instr.ops[1].imm, 4);
}

TEST(Decoder, PxorXmm) {
  // 66 0f ef c9   pxor xmm1, xmm1
  const Instruction instr = decodeOk({0x66, 0x0f, 0xef, 0xc9});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Pxor);
  EXPECT_EQ(instr.ops[0].reg, Reg::xmm1);
  EXPECT_EQ(instr.ops[1].reg, Reg::xmm1);
}

TEST(Decoder, MultiByteNop) {
  // 0f 1f 84 00 00 00 00 00   nopl 0x0(%rax,%rax,1)
  const Instruction instr =
      decodeOk({0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Nop);
  EXPECT_EQ(instr.length, 8);
}

TEST(Decoder, NopWithCsOverridePadding) {
  // 66 2e 0f 1f 84 00 00 00 00 00  gcc long nop with cs-segment padding
  const Instruction instr = decodeOk(
      {0x66, 0x2e, 0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Nop);
}

TEST(Decoder, MovslqWithDisp) {
  // 48 63 42 14   movsxd rax, dword ptr [rdx+0x14]
  const Instruction instr = decodeOk({0x48, 0x63, 0x42, 0x14});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Movsxd);
  EXPECT_EQ(instr.ops[0].reg, Reg::rax);
  EXPECT_EQ(instr.ops[1].mem.base, Reg::rdx);
  EXPECT_EQ(instr.ops[1].mem.disp, 0x14);
}

TEST(Decoder, ImulRegReg) {
  // 48 0f af c6   imul rax, rsi
  const Instruction instr = decodeOk({0x48, 0x0f, 0xaf, 0xc6});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Imul);
  EXPECT_EQ(instr.nops, 2);
  EXPECT_EQ(instr.ops[0].reg, Reg::rax);
  EXPECT_EQ(instr.ops[1].reg, Reg::rsi);
}

TEST(Decoder, MovsdWithSib) {
  // f2 41 0f 10 04 c0   movsd xmm0, qword ptr [r8+rax*8]
  const Instruction instr = decodeOk({0xf2, 0x41, 0x0f, 0x10, 0x04, 0xc0});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Movsd);
  EXPECT_EQ(instr.ops[0].reg, Reg::xmm0);
  const MemOperand& m = instr.ops[1].mem;
  EXPECT_EQ(m.base, Reg::r8);
  EXPECT_EQ(m.index, Reg::rax);
  EXPECT_EQ(m.scale, 8);
}

TEST(Decoder, MulsdNegativeDisp) {
  // f2 0f 59 42 f8   mulsd xmm0, qword ptr [rdx-0x8]
  const Instruction instr = decodeOk({0xf2, 0x0f, 0x59, 0x42, 0xf8});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Mulsd);
  EXPECT_EQ(instr.ops[1].mem.base, Reg::rdx);
  EXPECT_EQ(instr.ops[1].mem.disp, -8);
}

TEST(Decoder, AddsdRegReg) {
  // f2 0f 58 c8   addsd xmm1, xmm0
  const Instruction instr = decodeOk({0xf2, 0x0f, 0x58, 0xc8});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Addsd);
  EXPECT_EQ(instr.ops[0].reg, Reg::xmm1);
  EXPECT_EQ(instr.ops[1].reg, Reg::xmm0);
}

TEST(Decoder, CmpRegReg) {
  // 48 39 d7   cmp rdi, rdx
  const Instruction instr = decodeOk({0x48, 0x39, 0xd7});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Cmp);
  EXPECT_EQ(instr.ops[0].reg, Reg::rdi);
  EXPECT_EQ(instr.ops[1].reg, Reg::rdx);
}

TEST(Decoder, MovapdRegReg) {
  // 66 0f 28 c1   movapd xmm0, xmm1
  const Instruction instr = decodeOk({0x66, 0x0f, 0x28, 0xc1});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Movapd);
  EXPECT_EQ(instr.ops[0].reg, Reg::xmm0);
  EXPECT_EQ(instr.ops[1].reg, Reg::xmm1);
}

TEST(Decoder, Ret) {
  const Instruction instr = decodeOk({0xc3});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Ret);
}

TEST(Decoder, RipRelativeLoad) {
  // 48 8b 05 10 00 00 00   mov rax, qword ptr [rip+0x10]
  const Instruction instr = decodeOk({0x48, 0x8b, 0x05, 0x10, 0x00, 0x00,
                                      0x00});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Mov);
  EXPECT_TRUE(instr.ops[1].mem.ripRelative);
  EXPECT_EQ(instr.ops[1].mem.disp, 0x10);
}

TEST(Decoder, LeaWithSibNoBase) {
  // 48 8d 04 cd 00 00 00 00   lea rax, [rcx*8+0x0]
  const Instruction instr =
      decodeOk({0x48, 0x8d, 0x04, 0xcd, 0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Lea);
  EXPECT_EQ(instr.ops[1].mem.base, Reg::none);
  EXPECT_EQ(instr.ops[1].mem.index, Reg::rcx);
  EXPECT_EQ(instr.ops[1].mem.scale, 8);
}

TEST(Decoder, PushPopR15) {
  EXPECT_EQ(decodeOk({0x41, 0x57}).mnemonic, Mnemonic::Push);
  EXPECT_EQ(decodeOk({0x41, 0x57}).ops[0].reg, Reg::r15);
  EXPECT_EQ(decodeOk({0x41, 0x5f}).mnemonic, Mnemonic::Pop);
  EXPECT_EQ(decodeOk({0x41, 0x5f}).ops[0].reg, Reg::r15);
}

TEST(Decoder, CallRel32) {
  // e8 00 00 00 00   call next-instruction
  const Instruction instr = decodeOk({0xe8, 0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Call);
  EXPECT_EQ(instr.ops[0].imm, 0x1000 + 5);
}

TEST(Decoder, CallIndirectThroughRegister) {
  // ff d0   call rax
  const Instruction instr = decodeOk({0xff, 0xd0});
  EXPECT_EQ(instr.mnemonic, Mnemonic::CallInd);
  EXPECT_EQ(instr.ops[0].reg, Reg::rax);
}

TEST(Decoder, MovzxByte) {
  // 0f b6 c0   movzx eax, al
  const Instruction instr = decodeOk({0x0f, 0xb6, 0xc0});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Movzx);
  EXPECT_EQ(instr.width, 4);
  EXPECT_EQ(instr.srcWidth, 1);
}

TEST(Decoder, SetccByteReg) {
  // 0f 94 c0   sete al
  const Instruction instr = decodeOk({0x0f, 0x94, 0xc0});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Setcc);
  EXPECT_EQ(instr.cond, Cond::E);
  EXPECT_EQ(instr.ops[0].reg, Reg::rax);
}

TEST(Decoder, Cqo) {
  const Instruction instr = decodeOk({0x48, 0x99});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Cdq);
  EXPECT_EQ(instr.width, 8);
}

TEST(Decoder, Endbr64) {
  const Instruction instr = decodeOk({0xf3, 0x0f, 0x1e, 0xfa});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Endbr64);
}

TEST(Decoder, MovAbs64) {
  // 48 b8 88 77 66 55 44 33 22 11   movabs rax, 0x1122334455667788
  const Instruction instr = decodeOk(
      {0x48, 0xb8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Mov);
  EXPECT_EQ(instr.ops[1].imm, 0x1122334455667788LL);
}

TEST(Decoder, RejectsUnsupported) {
  // 0f a2  cpuid
  auto result = decodeOne(std::vector<uint8_t>{0x0f, 0xa2}, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::UndecodableInstruction);
}

TEST(Decoder, RejectsLockPrefix) {
  auto result = decodeOne(std::vector<uint8_t>{0xf0, 0x48, 0x01, 0x08}, 0);
  ASSERT_FALSE(result.ok());
}

TEST(Decoder, RejectsEmpty) {
  auto result = decodeOne(std::vector<uint8_t>{}, 0);
  ASSERT_FALSE(result.ok());
}

TEST(Decoder, RejectsTruncated) {
  // mov rax, [rip+disp32] cut short
  auto result = decodeOne(std::vector<uint8_t>{0x48, 0x8b, 0x05, 0x10}, 0);
  ASSERT_FALSE(result.ok());
}

TEST(Decoder, LegacyHighByteRejected) {
  // 88 e0  mov al, ah (no REX: ah is a legacy high-byte register)
  auto result = decodeOne(std::vector<uint8_t>{0x88, 0xe0}, 0);
  ASSERT_FALSE(result.ok());
}

TEST(Decoder, Grp1ImmediateForms) {
  // 83 c0 05  add eax, 5
  Instruction instr = decodeOk({0x83, 0xc0, 0x05});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Add);
  EXPECT_EQ(instr.ops[1].imm, 5);
  // 81 ef 00 01 00 00  sub edi, 0x100
  instr = decodeOk({0x81, 0xef, 0x00, 0x01, 0x00, 0x00});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Sub);
  EXPECT_EQ(instr.ops[0].reg, Reg::rdi);
  EXPECT_EQ(instr.ops[1].imm, 0x100);
  // 48 83 ec 18  sub rsp, 0x18
  instr = decodeOk({0x48, 0x83, 0xec, 0x18});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Sub);
  EXPECT_EQ(instr.ops[0].reg, Reg::rsp);
  EXPECT_EQ(instr.width, 8);
}

TEST(Decoder, R13BaseNeedsDisp) {
  // 41 8b 45 00   mov eax, dword ptr [r13+0x0]
  const Instruction instr = decodeOk({0x41, 0x8b, 0x45, 0x00});
  EXPECT_EQ(instr.ops[1].mem.base, Reg::r13);
  EXPECT_EQ(instr.ops[1].mem.disp, 0);
}

TEST(Decoder, CvtSi2SdFromReg) {
  // f2 48 0f 2a c7   cvtsi2sd xmm0, rdi
  const Instruction instr = decodeOk({0xf2, 0x48, 0x0f, 0x2a, 0xc7});
  EXPECT_EQ(instr.mnemonic, Mnemonic::Cvtsi2sd);
  EXPECT_EQ(instr.srcWidth, 8);
  EXPECT_EQ(instr.ops[0].reg, Reg::xmm0);
  EXPECT_EQ(instr.ops[1].reg, Reg::rdi);
}

}  // namespace
}  // namespace brew::isa
