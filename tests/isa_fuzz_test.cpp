// Decoder robustness: arbitrary byte soup must never crash, never read out
// of bounds, and either produce a well-formed instruction or a typed
// error. Well-formed means: re-encodable or cleanly rejected by the
// encoder, length within limits, operands structurally valid.
#include <gtest/gtest.h>

#include <vector>

#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "isa/printer.hpp"
#include "support/prng.hpp"

namespace brew::isa {
namespace {

void checkWellFormed(const Instruction& instr) {
  EXPECT_GT(instr.length, 0);
  EXPECT_LE(instr.length, 15);
  EXPECT_LE(instr.nops, 3u);
  for (unsigned i = 0; i < instr.nops; ++i) {
    const Operand& op = instr.ops[i];
    if (op.isReg()) {
      EXPECT_TRUE(isGpr(op.reg) || isXmm(op.reg));
    }
    if (op.isMem()) {
      EXPECT_TRUE(op.mem.scale == 1 || op.mem.scale == 2 ||
                  op.mem.scale == 4 || op.mem.scale == 8);
      if (op.mem.ripRelative) {
        EXPECT_EQ(op.mem.base, Reg::none);
        EXPECT_EQ(op.mem.index, Reg::none);
      }
    }
  }
  // The printer must cope with anything the decoder produces.
  EXPECT_FALSE(toString(instr).empty());
}

class DecoderFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzz, RandomBytes) {
  Prng rng(GetParam());
  std::vector<uint8_t> buf(32);
  size_t decoded = 0;
  for (int i = 0; i < 30000; ++i) {
    for (auto& b : buf) b = static_cast<uint8_t>(rng.next());
    auto instr = decodeOne(buf, 0x400000);
    if (!instr.ok()) {
      EXPECT_EQ(instr.error().code, ErrorCode::UndecodableInstruction);
      continue;
    }
    ++decoded;
    checkWellFormed(*instr);
    // Decoded instructions re-encode (or the encoder rejects them with a
    // typed error — some decodable forms are deliberately one-way, e.g.
    // multi-byte NOPs canonicalize).
    std::vector<uint8_t> out;
    Status s = encode(*instr, 0x400000, out);
    if (s.ok() && instr->mnemonic != Mnemonic::Nop) {
      auto redecoded = decodeOne(out, 0x400000);
      ASSERT_TRUE(redecoded.ok())
          << toString(*instr) << " re-encoded to undecodable bytes";
      EXPECT_EQ(redecoded->mnemonic, instr->mnemonic) << toString(*instr);
    } else if (!s.ok()) {
      EXPECT_EQ(s.error().code, ErrorCode::UnencodableInstruction);
    }
  }
  // Sanity: random bytes do hit the subset reasonably often.
  EXPECT_GT(decoded, 100u);
}

TEST_P(DecoderFuzz, ValidPrefixSoup) {
  // Bias the fuzz toward plausible instruction starts: REX + common opcode
  // rows; exercises the deeper ModRM/SIB paths.
  Prng rng(GetParam() * 7919);
  const uint8_t opcodes[] = {0x01, 0x03, 0x09, 0x0F, 0x21, 0x29, 0x2B, 0x31,
                             0x39, 0x63, 0x69, 0x6B, 0x81, 0x83, 0x85, 0x88,
                             0x89, 0x8B, 0x8D, 0xC1, 0xC7, 0xF7, 0xFF};
  std::vector<uint8_t> buf(16);
  for (int i = 0; i < 30000; ++i) {
    size_t pos = 0;
    if (rng.chance(0.3)) buf[pos++] = 0x66;
    if (rng.chance(0.3)) buf[pos++] = 0xF2;
    if (rng.chance(0.6))
      buf[pos++] = static_cast<uint8_t>(0x40 | rng.below(16));
    buf[pos++] = opcodes[rng.below(std::size(opcodes))];
    for (; pos < buf.size(); ++pos)
      buf[pos] = static_cast<uint8_t>(rng.next());
    auto instr = decodeOne(buf, 0);
    if (instr.ok()) checkWellFormed(*instr);
  }
}

TEST_P(DecoderFuzz, PackedSseSoup) {
  // Bias toward the packed-SSE rows the SLP vectorizer emits: optional
  // 66/F3 prefix, 0F escape, a mov/arith/shuffle opcode, random tail.
  // Exercises the imm8-carrying shufps path and the P66-vs-none mnemonic
  // splits (movupd/movups, addpd/addps, ...).
  Prng rng(GetParam() * 104729);
  const uint8_t opcodes[] = {0x10, 0x11, 0x28, 0x29, 0x14, 0x15, 0x51,
                             0x54, 0x56, 0x58, 0x59, 0x5C, 0x5E, 0x5D,
                             0x5F, 0xC6, 0xEF, 0xFE};
  std::vector<uint8_t> buf(16);
  size_t decoded = 0;
  for (int i = 0; i < 30000; ++i) {
    size_t pos = 0;
    const double pick = rng.uniform();
    if (pick < 0.35)
      buf[pos++] = 0x66;
    else if (pick < 0.5)
      buf[pos++] = 0xF3;
    if (rng.chance(0.25))
      buf[pos++] = static_cast<uint8_t>(0x40 | rng.below(16));
    buf[pos++] = 0x0F;
    buf[pos++] = opcodes[rng.below(std::size(opcodes))];
    for (; pos < buf.size(); ++pos)
      buf[pos] = static_cast<uint8_t>(rng.next());
    auto instr = decodeOne(buf, 0x400000);
    if (!instr.ok()) continue;
    ++decoded;
    checkWellFormed(*instr);
    std::vector<uint8_t> out;
    Status s = encode(*instr, 0x400000, out);
    if (s.ok()) {
      auto redecoded = decodeOne(out, 0x400000);
      ASSERT_TRUE(redecoded.ok())
          << toString(*instr) << " re-encoded to undecodable bytes";
      EXPECT_EQ(redecoded->mnemonic, instr->mnemonic) << toString(*instr);
    } else {
      EXPECT_EQ(s.error().code, ErrorCode::UnencodableInstruction);
    }
  }
  EXPECT_GT(decoded, 1000u);
}

TEST(DecoderFuzz, TruncationsNeverOverread) {
  // Every prefix of a valid instruction decodes or fails cleanly.
  const std::vector<std::vector<uint8_t>> valid = {
      {0x48, 0x8b, 0x84, 0xc8, 0x78, 0x56, 0x34, 0x12},  // mov rax,[rax+rcx*8+disp]
      {0xf2, 0x41, 0x0f, 0x10, 0x04, 0xc0},              // movsd
      {0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8},              // movabs
      {0x0f, 0x1f, 0x84, 0x00, 0, 0, 0, 0},              // long nop
      {0x66, 0x0f, 0xef, 0xc9},                          // pxor
      {0x0f, 0x10, 0x47, 0xf8},                          // movups load
      {0x0f, 0xc6, 0xc1, 0x39},                          // shufps imm8
      {0x66, 0x0f, 0xfe, 0xc1},                          // paddd
      {0x0f, 0x59, 0x4c, 0x24, 0x10},                    // mulps [rsp+16]
  };
  for (const auto& bytes : valid) {
    for (size_t len = 0; len <= bytes.size(); ++len) {
      auto instr =
          decodeOne(std::span<const uint8_t>(bytes.data(), len), 0);
      if (len == bytes.size()) {
        EXPECT_TRUE(instr.ok());
      } else if (instr.ok()) {
        // A shorter valid instruction is acceptable only if it fits.
        EXPECT_LE(instr->length, len);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace brew::isa
