// Instruction metadata tests: flag def/use sets and register def/use sets
// (the passes and the tracer both rely on their conservativeness).
#include <gtest/gtest.h>

#include "isa/instruction.hpp"

namespace brew::isa {
namespace {

TEST(Flags, ArithmeticWritesAll) {
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Add, 8)), kArithFlags);
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Cmp, 8)), kArithFlags);
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Xor, 8)), kArithFlags);
}

TEST(Flags, IncDecPreserveCarry) {
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Inc, 8)) & kFlagCF, 0);
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Dec, 8)) & kFlagCF, 0);
  EXPECT_NE(flagsWritten(makeInstr(Mnemonic::Inc, 8)) & kFlagZF, 0);
}

TEST(Flags, MovesWriteNothing) {
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Mov, 8)), 0);
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Lea, 8)), 0);
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Movsd, 8)), 0);
  EXPECT_EQ(flagsWritten(makeInstr(Mnemonic::Push, 8)), 0);
}

TEST(Flags, ConditionReads) {
  Instruction jcc = makeInstr(Mnemonic::Jcc, 8);
  jcc.cond = Cond::E;
  EXPECT_EQ(flagsRead(jcc), kFlagZF);
  jcc.cond = Cond::L;
  EXPECT_EQ(flagsRead(jcc), kFlagSF | kFlagOF);
  jcc.cond = Cond::BE;
  EXPECT_EQ(flagsRead(jcc), kFlagCF | kFlagZF);
  jcc.cond = Cond::G;
  EXPECT_EQ(flagsRead(jcc), kFlagSF | kFlagOF | kFlagZF);
  EXPECT_EQ(flagsRead(makeInstr(Mnemonic::Adc, 8)), kFlagCF);
  EXPECT_EQ(flagsRead(makeInstr(Mnemonic::Add, 8)), 0);
}

TEST(RegSets, SimpleBinop) {
  const Instruction add = makeInstr(Mnemonic::Add, 8,
                                    Operand::makeReg(Reg::rax),
                                    Operand::makeReg(Reg::rbx));
  EXPECT_EQ(regsWritten(add), regBit(Reg::rax));
  EXPECT_EQ(regsRead(add), regBit(Reg::rax) | regBit(Reg::rbx));

  const Instruction mov = makeInstr(Mnemonic::Mov, 8,
                                    Operand::makeReg(Reg::rax),
                                    Operand::makeReg(Reg::rbx));
  EXPECT_EQ(regsRead(mov), regBit(Reg::rbx));  // pure dest not read
}

TEST(RegSets, MemoryOperandsContributeAddressRegs) {
  MemOperand m;
  m.base = Reg::rdi;
  m.index = Reg::rcx;
  m.scale = 8;
  const Instruction load = makeInstr(Mnemonic::Mov, 8,
                                     Operand::makeReg(Reg::rax),
                                     Operand::makeMem(m));
  EXPECT_EQ(regsRead(load), regBit(Reg::rdi) | regBit(Reg::rcx));
  const Instruction store = makeInstr(Mnemonic::Mov, 8, Operand::makeMem(m),
                                      Operand::makeReg(Reg::rax));
  EXPECT_EQ(regsRead(store),
            regBit(Reg::rdi) | regBit(Reg::rcx) | regBit(Reg::rax));
  EXPECT_EQ(regsWritten(store), 0u);
}

TEST(RegSets, ImplicitOperands) {
  const Instruction idiv = makeInstr(Mnemonic::Idiv, 8,
                                     Operand::makeReg(Reg::rbx));
  EXPECT_NE(regsRead(idiv) & regBit(Reg::rax), 0u);
  EXPECT_NE(regsRead(idiv) & regBit(Reg::rdx), 0u);
  EXPECT_EQ(regsWritten(idiv), regBit(Reg::rax) | regBit(Reg::rdx));

  const Instruction shl = makeInstr(Mnemonic::Shl, 8,
                                    Operand::makeReg(Reg::rbx),
                                    Operand::makeReg(Reg::rcx));
  EXPECT_NE(regsRead(shl) & regBit(Reg::rcx), 0u);

  const Instruction push = makeInstr(Mnemonic::Push, 8,
                                     Operand::makeReg(Reg::r12));
  EXPECT_NE(regsRead(push) & regBit(Reg::rsp), 0u);
  EXPECT_NE(regsRead(push) & regBit(Reg::r12), 0u);
  EXPECT_EQ(regsWritten(push), regBit(Reg::rsp));
}

TEST(RegSets, CallClobbersCallerSaved) {
  const Instruction call = makeInstr(Mnemonic::CallInd, 8,
                                     Operand::makeReg(Reg::rax));
  const uint32_t written = regsWritten(call);
  EXPECT_NE(written & regBit(Reg::rax), 0u);
  EXPECT_NE(written & regBit(Reg::r11), 0u);
  EXPECT_NE(written & regBit(Reg::xmm0), 0u);
  EXPECT_EQ(written & regBit(Reg::rbx), 0u);   // callee-saved survives
  EXPECT_EQ(written & regBit(Reg::r12), 0u);
  const uint32_t read = regsRead(call);
  EXPECT_NE(read & regBit(Reg::rdi), 0u);      // may consume args
  EXPECT_NE(read & regBit(Reg::xmm7), 0u);
}

TEST(RegSets, XmmOps) {
  const Instruction mul = makeInstr(Mnemonic::Mulsd, 8,
                                    Operand::makeReg(Reg::xmm1),
                                    Operand::makeReg(Reg::xmm2));
  EXPECT_EQ(regsWritten(mul), regBit(Reg::xmm1));
  EXPECT_EQ(regsRead(mul), regBit(Reg::xmm1) | regBit(Reg::xmm2));
}

TEST(Metadata, ReadsDestination) {
  EXPECT_TRUE(readsDestination(makeInstr(Mnemonic::Add, 8)));
  EXPECT_TRUE(readsDestination(makeInstr(Mnemonic::Addsd, 8)));
  EXPECT_FALSE(readsDestination(makeInstr(Mnemonic::Mov, 8)));
  EXPECT_FALSE(readsDestination(makeInstr(Mnemonic::Lea, 8)));
  EXPECT_FALSE(readsDestination(makeInstr(Mnemonic::Movsx, 8)));
}

TEST(Metadata, WritesMemory) {
  MemOperand m;
  m.base = Reg::rdi;
  EXPECT_TRUE(writesMemory(makeInstr(Mnemonic::Mov, 8, Operand::makeMem(m),
                                     Operand::makeReg(Reg::rax))));
  EXPECT_FALSE(writesMemory(makeInstr(Mnemonic::Mov, 8,
                                      Operand::makeReg(Reg::rax),
                                      Operand::makeMem(m))));
  EXPECT_FALSE(writesMemory(makeInstr(Mnemonic::Cmp, 8, Operand::makeMem(m),
                                      Operand::makeReg(Reg::rax))));
  EXPECT_TRUE(writesMemory(makeInstr(Mnemonic::Push, 8,
                                     Operand::makeReg(Reg::rax))));
}

TEST(Metadata, CondInversion) {
  EXPECT_EQ(invert(Cond::E), Cond::NE);
  EXPECT_EQ(invert(Cond::NE), Cond::E);
  EXPECT_EQ(invert(Cond::L), Cond::GE);
  EXPECT_EQ(invert(Cond::A), Cond::BE);
}

TEST(Metadata, AbiClassification) {
  using namespace abi;
  EXPECT_TRUE(isCalleeSaved(Reg::rbx));
  EXPECT_TRUE(isCalleeSaved(Reg::r15));
  EXPECT_FALSE(isCalleeSaved(Reg::rax));
  EXPECT_TRUE(isCallerSaved(Reg::r11));
  EXPECT_TRUE(isCallerSaved(Reg::xmm15));
  EXPECT_FALSE(isCallerSaved(Reg::rbp));
  EXPECT_EQ(kIntArgs[0], Reg::rdi);
  EXPECT_EQ(kSseArgs[0], Reg::xmm0);
}

}  // namespace
}  // namespace brew::isa
