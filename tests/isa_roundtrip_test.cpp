// Encoder/decoder agreement.
//
// Property: for every decodable byte sequence B with decode(B) = I,
// encode(I) must decode back to an instruction equal to I, and
// encode(decode(encode(I))) == encode(I) (encoding is a fixed point).
// We sweep a generated sample of the supported instruction space
// (parameterized over mnemonic/width/operand shapes) plus the byte
// sequences gcc emits for the paper's kernels.
#include <gtest/gtest.h>

#include <vector>

#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "isa/printer.hpp"
#include "support/prng.hpp"

namespace brew::isa {
namespace {

// Instruction with an explicit source width (extensions and conversions).
Instruction makeInstrExt(Mnemonic mn, uint8_t width, uint8_t srcWidth,
                         Reg dst, Reg src) {
  Instruction instr =
      makeInstr(mn, width, Operand::makeReg(dst), Operand::makeReg(src));
  instr.srcWidth = srcWidth;
  return instr;
}

void expectRoundTrip(const Instruction& instr) {
  std::vector<uint8_t> bytes1;
  Status s1 = encode(instr, 0x1000, bytes1);
  ASSERT_TRUE(s1.ok()) << toString(instr) << ": " << s1.error().message();

  auto decoded = decodeOne(bytes1, 0x1000);
  ASSERT_TRUE(decoded.ok())
      << toString(instr) << " encoded to undecodable bytes: "
      << decoded.error().message();

  std::vector<uint8_t> bytes2;
  Status s2 = encode(*decoded, 0x1000, bytes2);
  ASSERT_TRUE(s2.ok()) << toString(*decoded);
  EXPECT_EQ(bytes1, bytes2)
      << "original: " << toString(instr) << "\nredecoded: "
      << toString(*decoded);
}

// --- directed cases ------------------------------------------------------

TEST(RoundTrip, MovVariants) {
  for (Reg dst : {Reg::rax, Reg::rbp, Reg::rsp, Reg::r8, Reg::r13}) {
    for (Reg src : {Reg::rcx, Reg::rsi, Reg::r12, Reg::r15}) {
      for (uint8_t w : {1, 2, 4, 8})
        expectRoundTrip(makeInstr(Mnemonic::Mov, w, Operand::makeReg(dst),
                                  Operand::makeReg(src)));
    }
  }
  expectRoundTrip(makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rax),
                            Operand::makeImm(0x123456789abcLL)));
  expectRoundTrip(makeInstr(Mnemonic::Mov, 4, Operand::makeReg(Reg::r9),
                            Operand::makeImm(42)));
  expectRoundTrip(makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rdi),
                            Operand::makeImm(-1)));
}

TEST(RoundTrip, MemoryAddressingShapes) {
  const MemOperand shapes[] = {
      {.base = Reg::rax},
      {.base = Reg::rsp, .disp = 8},
      {.base = Reg::rbp},
      {.base = Reg::r12},
      {.base = Reg::r13},
      {.base = Reg::rbx, .disp = -0x20},
      {.base = Reg::rcx, .disp = 0x12345},
      {.base = Reg::rax, .index = Reg::rcx, .scale = 8},
      {.base = Reg::r8, .index = Reg::r15, .scale = 4, .disp = 0x40},
      {.base = Reg::none, .index = Reg::rdx, .scale = 2, .disp = 0x100},
      {.base = Reg::rsp, .index = Reg::rax, .scale = 1},
      {.disp = 0x4000, .ripRelative = true},
  };
  for (const MemOperand& m : shapes) {
    expectRoundTrip(makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rdx),
                              Operand::makeMem(m)));
    expectRoundTrip(makeInstr(Mnemonic::Mov, 4, Operand::makeMem(m),
                              Operand::makeReg(Reg::rsi)));
    expectRoundTrip(makeInstr(Mnemonic::Movsd, 8,
                              Operand::makeReg(Reg::xmm3),
                              Operand::makeMem(m)));
    expectRoundTrip(makeInstr(Mnemonic::Lea, 8, Operand::makeReg(Reg::rbx),
                              Operand::makeMem(m)));
  }
}

TEST(RoundTrip, AluImmediateWidths) {
  const Mnemonic alu[] = {Mnemonic::Add, Mnemonic::Sub, Mnemonic::Cmp,
                          Mnemonic::And, Mnemonic::Or, Mnemonic::Xor,
                          Mnemonic::Adc, Mnemonic::Sbb};
  for (Mnemonic mn : alu) {
    for (int64_t imm : {1LL, -1LL, 127LL, 128LL, -129LL, 0x12345LL}) {
      expectRoundTrip(
          makeInstr(mn, 8, Operand::makeReg(Reg::rbx), Operand::makeImm(imm)));
      expectRoundTrip(
          makeInstr(mn, 4, Operand::makeReg(Reg::r10), Operand::makeImm(imm)));
    }
    expectRoundTrip(makeInstr(mn, 8, Operand::makeReg(Reg::rax),
                              Operand::makeReg(Reg::r9)));
    expectRoundTrip(
        makeInstr(mn, 8, Operand::makeReg(Reg::rax),
                  Operand::makeMem(MemOperand{.base = Reg::rsi, .disp = 8})));
    expectRoundTrip(
        makeInstr(mn, 4,
                  Operand::makeMem(MemOperand{.base = Reg::rdi, .disp = -4}),
                  Operand::makeReg(Reg::rcx)));
  }
}

TEST(RoundTrip, ShiftForms) {
  for (Mnemonic mn : {Mnemonic::Shl, Mnemonic::Shr, Mnemonic::Sar,
                      Mnemonic::Rol, Mnemonic::Ror}) {
    expectRoundTrip(
        makeInstr(mn, 8, Operand::makeReg(Reg::rdx), Operand::makeImm(3)));
    expectRoundTrip(
        makeInstr(mn, 4, Operand::makeReg(Reg::r11), Operand::makeImm(31)));
    expectRoundTrip(
        makeInstr(mn, 8, Operand::makeReg(Reg::rbx),
                  Operand::makeReg(Reg::rcx)));  // by CL
  }
}

TEST(RoundTrip, UnaryAndWide) {
  for (Mnemonic mn : {Mnemonic::Not, Mnemonic::Neg, Mnemonic::Inc,
                      Mnemonic::Dec, Mnemonic::MulWide, Mnemonic::ImulWide,
                      Mnemonic::Div, Mnemonic::Idiv}) {
    expectRoundTrip(makeInstr(mn, 8, Operand::makeReg(Reg::rcx)));
    expectRoundTrip(makeInstr(mn, 4, Operand::makeReg(Reg::r14)));
    expectRoundTrip(makeInstr(
        mn, 8, Operand::makeMem(MemOperand{.base = Reg::rsp, .disp = 16})));
  }
}

TEST(RoundTrip, ImulForms) {
  expectRoundTrip(makeInstr(Mnemonic::Imul, 8, Operand::makeReg(Reg::rax),
                            Operand::makeReg(Reg::rsi)));
  expectRoundTrip(makeInstr(Mnemonic::Imul, 8, Operand::makeReg(Reg::r9),
                            Operand::makeReg(Reg::rdx),
                            Operand::makeImm(100)));
  expectRoundTrip(makeInstr(Mnemonic::Imul, 4, Operand::makeReg(Reg::rcx),
                            Operand::makeReg(Reg::rdx), Operand::makeImm(3)));
}

TEST(RoundTrip, Extensions) {
  expectRoundTrip(makeInstrExt(Mnemonic::Movsxd, 8, 4, Reg::rax, Reg::rdi));
  expectRoundTrip(makeInstrExt(Mnemonic::Movsx, 8, 1, Reg::rbx, Reg::rsi));
  expectRoundTrip(makeInstrExt(Mnemonic::Movsx, 4, 2, Reg::r8, Reg::rcx));
  expectRoundTrip(makeInstrExt(Mnemonic::Movzx, 4, 1, Reg::rdx, Reg::rax));
  expectRoundTrip(makeInstrExt(Mnemonic::Movzx, 8, 2, Reg::r12, Reg::r13));
}

TEST(RoundTrip, SseArith) {
  const Mnemonic sse[] = {Mnemonic::Addsd, Mnemonic::Subsd, Mnemonic::Mulsd,
                          Mnemonic::Divsd, Mnemonic::Minsd, Mnemonic::Maxsd,
                          Mnemonic::Sqrtsd, Mnemonic::Addss, Mnemonic::Mulss,
                          Mnemonic::Addpd, Mnemonic::Mulpd, Mnemonic::Subpd,
                          Mnemonic::Pxor, Mnemonic::Xorpd, Mnemonic::Andpd,
                          Mnemonic::Unpcklpd, Mnemonic::Unpckhpd,
                          Mnemonic::Ucomisd, Mnemonic::Comisd};
  for (Mnemonic mn : sse) {
    const uint8_t w = 8;
    expectRoundTrip(makeInstr(mn, w, Operand::makeReg(Reg::xmm0),
                              Operand::makeReg(Reg::xmm12)));
    expectRoundTrip(
        makeInstr(mn, w, Operand::makeReg(Reg::xmm9),
                  Operand::makeMem(MemOperand{.base = Reg::rdi, .disp = 24})));
  }
}

TEST(RoundTrip, SseMoves) {
  for (Mnemonic mn : {Mnemonic::Movsd, Mnemonic::Movss, Mnemonic::Movapd,
                      Mnemonic::Movaps, Mnemonic::Movupd, Mnemonic::Movups,
                      Mnemonic::Movdqa, Mnemonic::Movdqu}) {
    expectRoundTrip(makeInstr(mn, 16, Operand::makeReg(Reg::xmm1),
                              Operand::makeReg(Reg::xmm2)));
    const MemOperand m{.base = Reg::rbp, .disp = -0x10};
    expectRoundTrip(
        makeInstr(mn, 16, Operand::makeReg(Reg::xmm5), Operand::makeMem(m)));
    expectRoundTrip(
        makeInstr(mn, 16, Operand::makeMem(m), Operand::makeReg(Reg::xmm7)));
  }
}

TEST(RoundTrip, PackedSingleAndIntegerForms) {
  // The SLP vectorizer emits these packed forms; every operand shape it
  // uses (reg-reg, load, store) must survive encode→decode→encode.
  const Mnemonic arith[] = {Mnemonic::Addps,    Mnemonic::Subps,
                            Mnemonic::Mulps,    Mnemonic::Divps,
                            Mnemonic::Paddd,    Mnemonic::Orps,
                            Mnemonic::Unpcklps, Mnemonic::Unpckhps};
  for (Mnemonic mn : arith) {
    expectRoundTrip(makeInstr(mn, 16, Operand::makeReg(Reg::xmm2),
                              Operand::makeReg(Reg::xmm11)));
    expectRoundTrip(
        makeInstr(mn, 16, Operand::makeReg(Reg::xmm8),
                  Operand::makeMem(MemOperand{.base = Reg::rsi,
                                              .disp = -0x20})));
  }
  for (Mnemonic mn : {Mnemonic::Movups, Mnemonic::Movaps}) {
    const MemOperand m{.base = Reg::r9, .disp = 0x40};
    expectRoundTrip(makeInstr(mn, 16, Operand::makeReg(Reg::xmm3),
                              Operand::makeMem(m)));
    expectRoundTrip(makeInstr(mn, 16, Operand::makeMem(m),
                              Operand::makeReg(Reg::xmm14)));
  }
}

TEST(RoundTrip, ShufpsImmediateForms) {
  for (const int64_t imm : {0x00, 0x39, 0x4E, 0xB1, 0xFF}) {
    expectRoundTrip(makeInstr(Mnemonic::Shufps, 16,
                              Operand::makeReg(Reg::xmm1),
                              Operand::makeReg(Reg::xmm6),
                              Operand::makeImm(imm)));
    expectRoundTrip(makeInstr(Mnemonic::Shufpd, 16,
                              Operand::makeReg(Reg::xmm9),
                              Operand::makeReg(Reg::xmm2),
                              Operand::makeImm(imm & 3)));
    expectRoundTrip(makeInstr(
        Mnemonic::Shufps, 16, Operand::makeReg(Reg::xmm4),
        Operand::makeMem(MemOperand{.base = Reg::rbx, .disp = 16}),
        Operand::makeImm(imm)));
  }
}

TEST(RoundTrip, MovqMovdForms) {
  expectRoundTrip(makeInstr(Mnemonic::Movq, 8, Operand::makeReg(Reg::xmm0),
                            Operand::makeReg(Reg::rax)));
  expectRoundTrip(makeInstr(Mnemonic::Movq, 8, Operand::makeReg(Reg::rax),
                            Operand::makeReg(Reg::xmm0)));
  expectRoundTrip(makeInstr(Mnemonic::Movq, 8, Operand::makeReg(Reg::xmm3),
                            Operand::makeReg(Reg::xmm4)));
  expectRoundTrip(makeInstr(
      Mnemonic::Movq, 8, Operand::makeReg(Reg::xmm3),
      Operand::makeMem(MemOperand{.base = Reg::rsp, .disp = 8})));
  expectRoundTrip(makeInstr(
      Mnemonic::Movq, 8, Operand::makeMem(MemOperand{.base = Reg::rsp}),
      Operand::makeReg(Reg::xmm2)));
  expectRoundTrip(makeInstr(Mnemonic::Movd, 4, Operand::makeReg(Reg::xmm1),
                            Operand::makeReg(Reg::rcx)));
}

TEST(RoundTrip, Conversions) {
  expectRoundTrip(makeInstrExt(Mnemonic::Cvtsi2sd, 8, 8, Reg::xmm0, Reg::rdi));
  expectRoundTrip(makeInstrExt(Mnemonic::Cvtsi2sd, 8, 4, Reg::xmm2, Reg::rax));
  {
    Instruction instr = makeInstr(Mnemonic::Cvttsd2si, 8,
                                  Operand::makeReg(Reg::rax),
                                  Operand::makeReg(Reg::xmm0));
    instr.srcWidth = 8;
    expectRoundTrip(instr);
  }
  expectRoundTrip(makeInstr(Mnemonic::Cvtss2sd, 8, Operand::makeReg(Reg::xmm0),
                            Operand::makeReg(Reg::xmm1)));
  expectRoundTrip(makeInstr(Mnemonic::Cvtsd2ss, 4, Operand::makeReg(Reg::xmm0),
                            Operand::makeReg(Reg::xmm1)));
}

TEST(RoundTrip, CondOps) {
  for (int cc = 0; cc < 16; ++cc) {
    Instruction cmov = makeInstr(Mnemonic::Cmovcc, 8,
                                 Operand::makeReg(Reg::rax),
                                 Operand::makeReg(Reg::rbx));
    cmov.cond = static_cast<Cond>(cc);
    expectRoundTrip(cmov);
    Instruction setcc = makeInstr(Mnemonic::Setcc, 1,
                                  Operand::makeReg(Reg::rcx));
    setcc.cond = static_cast<Cond>(cc);
    expectRoundTrip(setcc);
  }
}

TEST(RoundTrip, StackOps) {
  for (Reg r : {Reg::rax, Reg::rbp, Reg::r12, Reg::r15}) {
    expectRoundTrip(makeInstr(Mnemonic::Push, 8, Operand::makeReg(r)));
    expectRoundTrip(makeInstr(Mnemonic::Pop, 8, Operand::makeReg(r)));
  }
  expectRoundTrip(makeInstr(Mnemonic::Push, 8, Operand::makeImm(42)));
  expectRoundTrip(makeInstr(Mnemonic::Push, 8, Operand::makeImm(0x1234567)));
}

TEST(RoundTrip, Misc) {
  expectRoundTrip(makeInstr(Mnemonic::Ret, 8));
  expectRoundTrip(makeInstr(Mnemonic::Leave, 8));
  expectRoundTrip(makeInstr(Mnemonic::Nop, 8));
  expectRoundTrip(makeInstr(Mnemonic::Int3, 8));
  expectRoundTrip(makeInstr(Mnemonic::Ud2, 8));
  expectRoundTrip(makeInstr(Mnemonic::Endbr64, 8));
  expectRoundTrip(makeInstr(Mnemonic::Cdqe, 8));
  expectRoundTrip(makeInstr(Mnemonic::Cdq, 8));
  expectRoundTrip(makeInstr(Mnemonic::Cdq, 4));
  expectRoundTrip(makeInstr(Mnemonic::Test, 8, Operand::makeReg(Reg::rsi),
                            Operand::makeReg(Reg::rsi)));
  expectRoundTrip(makeInstr(Mnemonic::Test, 4, Operand::makeReg(Reg::rax),
                            Operand::makeImm(0xFF)));
  expectRoundTrip(makeInstr(Mnemonic::CallInd, 8, Operand::makeReg(Reg::rax)));
  expectRoundTrip(makeInstr(Mnemonic::JmpInd, 8, Operand::makeReg(Reg::r11)));
  {
    Instruction shuf = makeInstr(Mnemonic::Shufpd, 16,
                                 Operand::makeReg(Reg::xmm0),
                                 Operand::makeReg(Reg::xmm1),
                                 Operand::makeImm(1));
    expectRoundTrip(shuf);
  }
}

// --- randomized property sweep ------------------------------------------

struct RandomSweepParams {
  uint64_t seed;
};

class RoundTripRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripRandom, RandomGprInstructions) {
  Prng rng(GetParam());
  const Mnemonic pool[] = {Mnemonic::Mov, Mnemonic::Add, Mnemonic::Sub,
                           Mnemonic::Cmp, Mnemonic::And, Mnemonic::Or,
                           Mnemonic::Xor, Mnemonic::Test, Mnemonic::Lea,
                           Mnemonic::Imul};
  const Reg regs[] = {Reg::rax, Reg::rcx, Reg::rdx, Reg::rbx, Reg::rsi,
                      Reg::rdi, Reg::r8, Reg::r9, Reg::r10, Reg::r11,
                      Reg::r12, Reg::r13, Reg::r14, Reg::r15, Reg::rbp,
                      Reg::rsp};
  for (int i = 0; i < 400; ++i) {
    const Mnemonic mn = pool[rng.below(std::size(pool))];
    const uint8_t width = (rng.chance(0.5)) ? 8 : 4;
    const Reg dst = regs[rng.below(std::size(regs))];
    Operand src;
    switch (rng.below(3)) {
      case 0:
        src = Operand::makeReg(regs[rng.below(std::size(regs))]);
        break;
      case 1:
        src = Operand::makeImm(rng.range(-(1 << 20), 1 << 20));
        break;
      default: {
        MemOperand m;
        m.base = regs[rng.below(std::size(regs))];
        if (rng.chance(0.5)) {
          Reg idx = regs[rng.below(std::size(regs))];
          if (idx != Reg::rsp) {
            m.index = idx;
            m.scale = static_cast<uint8_t>(1u << rng.below(4));
          }
        }
        m.disp = static_cast<int32_t>(rng.range(-4096, 4096));
        src = Operand::makeMem(m);
        break;
      }
    }
    if (mn == Mnemonic::Lea && !src.isMem()) continue;
    if (mn == Mnemonic::Imul && !src.isReg() && !src.isMem()) continue;
    if (mn == Mnemonic::Test && src.isMem()) continue;
    expectRoundTrip(makeInstr(mn, width, Operand::makeReg(dst), src));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace brew::isa
