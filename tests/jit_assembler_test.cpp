// Assembler tests: generated code must actually execute natively.
#include <gtest/gtest.h>

#include "isa/printer.hpp"
#include "jit/assembler.hpp"

namespace brew::jit {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

TEST(Assembler, ReturnsConstant) {
  Assembler assembler;
  assembler.movRegImm(Reg::rax, 42);
  assembler.ret();
  auto mem = assembler.finalizeExecutable();
  ASSERT_TRUE(mem.ok()) << mem.error().message();
  auto fn = mem->entry<int64_t (*)()>();
  EXPECT_EQ(fn(), 42);
}

TEST(Assembler, AddsArguments) {
  Assembler assembler;
  assembler.movRegReg(Reg::rax, Reg::rdi);
  assembler.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rsi);
  assembler.ret();
  auto mem = assembler.finalizeExecutable();
  ASSERT_TRUE(mem.ok());
  auto fn = mem->entry<int64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(fn(2, 3), 5);
  EXPECT_EQ(fn(-7, 7), 0);
  EXPECT_EQ(fn(INT64_MAX, 1), INT64_MIN);  // wraparound
}

TEST(Assembler, ForwardBranch) {
  // return (a < b) ? 1 : 2 using a forward jcc
  Assembler assembler;
  Label less = assembler.newLabel();
  Label done = assembler.newLabel();
  assembler.aluRegReg(Mnemonic::Cmp, Reg::rdi, Reg::rsi);
  assembler.jcc(Cond::L, less);
  assembler.movRegImm(Reg::rax, 2);
  assembler.jmp(done);
  assembler.bind(less);
  assembler.movRegImm(Reg::rax, 1);
  assembler.bind(done);
  assembler.ret();
  auto mem = assembler.finalizeExecutable();
  ASSERT_TRUE(mem.ok());
  auto fn = mem->entry<int64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(fn(1, 2), 1);
  EXPECT_EQ(fn(2, 1), 2);
  EXPECT_EQ(fn(3, 3), 2);
}

TEST(Assembler, BackwardLoop) {
  // sum 1..n: rax = 0; rcx = n; loop: rax += rcx; rcx -= 1; jnz loop
  Assembler assembler;
  assembler.movRegImm(Reg::rax, 0);
  assembler.movRegReg(Reg::rcx, Reg::rdi);
  Label loop = assembler.newLabel();
  assembler.bind(loop);
  assembler.aluRegReg(Mnemonic::Add, Reg::rax, Reg::rcx);
  assembler.aluRegImm(Mnemonic::Sub, Reg::rcx, 1);
  assembler.jcc(Cond::NE, loop);
  assembler.ret();
  auto mem = assembler.finalizeExecutable();
  ASSERT_TRUE(mem.ok());
  auto fn = mem->entry<int64_t (*)(int64_t)>();
  EXPECT_EQ(fn(1), 1);
  EXPECT_EQ(fn(10), 55);
  EXPECT_EQ(fn(100), 5050);
}

TEST(Assembler, MemoryLoadStore) {
  // *out = *in + 1
  Assembler assembler;
  assembler.movRegMem(Reg::rax, MemOperand{.base = Reg::rdi}, 8);
  assembler.aluRegImm(Mnemonic::Add, Reg::rax, 1, 8);
  assembler.movMemReg(MemOperand{.base = Reg::rsi}, Reg::rax, 8);
  assembler.ret();
  auto mem = assembler.finalizeExecutable();
  ASSERT_TRUE(mem.ok());
  auto fn = mem->entry<void (*)(const int64_t*, int64_t*)>();
  int64_t in = 41, out = 0;
  fn(&in, &out);
  EXPECT_EQ(out, 42);
}

TEST(Assembler, CallAbsToExistingFunction) {
  // Calls a helper in this test binary from mmap'ed code. callAbs uses the
  // movabs r11 + call r11 pattern, so arbitrary distances work under ASLR.
  static auto helper = +[](int64_t x) -> int64_t { return x * 3; };
  Assembler assembler;
  // arg already in rdi; the entry stack is ret-address-aligned, so one
  // 8-byte adjustment restores 16-byte alignment for the nested call.
  assembler.aluRegImm(Mnemonic::Sub, Reg::rsp, 8);
  assembler.callAbs(reinterpret_cast<uint64_t>(+helper));
  assembler.aluRegImm(Mnemonic::Add, Reg::rsp, 8);
  assembler.ret();
  auto mem = assembler.finalizeExecutable();
  ASSERT_TRUE(mem.ok()) << mem.error().message();
  auto fn = mem->entry<int64_t (*)(int64_t)>();
  EXPECT_EQ(fn(14), 42);
}

TEST(Assembler, SseScalarArithmetic) {
  // return a * b + c
  Assembler assembler;
  assembler.emit(makeInstr(Mnemonic::Mulsd, 8, Operand::makeReg(Reg::xmm0),
                           Operand::makeReg(Reg::xmm1)));
  assembler.emit(makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm0),
                           Operand::makeReg(Reg::xmm2)));
  assembler.ret();
  auto mem = assembler.finalizeExecutable();
  ASSERT_TRUE(mem.ok());
  auto fn = mem->entry<double (*)(double, double, double)>();
  EXPECT_DOUBLE_EQ(fn(2.0, 3.0, 0.5), 6.5);
}

TEST(Assembler, StickyErrorReporting) {
  Assembler assembler;
  // rsp as index register is unencodable.
  MemOperand bad;
  bad.base = Reg::rax;
  bad.index = Reg::rsp;
  bad.scale = 2;
  assembler.movRegMem(Reg::rbx, bad, 8);
  assembler.ret();  // ignored after failure
  auto bytes = assembler.finalizeBytes();
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.error().code, ErrorCode::UnencodableInstruction);
}

TEST(Assembler, UnboundLabelFails) {
  Assembler assembler;
  Label never = assembler.newLabel();
  assembler.jmp(never);
  assembler.ret();
  auto bytes = assembler.finalizeBytes();
  ASSERT_FALSE(bytes.ok());
}

TEST(ExecMemory, WxDiscipline) {
  auto mem = ExecMemory::allocate(64);
  ASSERT_TRUE(mem.ok());
  EXPECT_FALSE(mem->executable());
  ASSERT_FALSE(mem->writableBytes().empty());
  mem->writableBytes()[0] = 0xC3;  // ret
  ASSERT_TRUE(mem->finalize().ok());
  EXPECT_TRUE(mem->executable());
  EXPECT_TRUE(mem->writableBytes().empty());
  mem->entry<void (*)()>()();
  ASSERT_TRUE(mem->makeWritable().ok());
  EXPECT_FALSE(mem->executable());
  // Patch through the writable view and re-finalize: the execution view
  // must observe the new bytes.
  mem->writableBytes()[0] = 0x90;  // nop
  mem->writableBytes()[1] = 0xC3;  // ret
  ASSERT_TRUE(mem->finalize().ok());
  EXPECT_EQ(mem->data()[0], 0x90);
  mem->entry<void (*)()>()();
}

}  // namespace
}  // namespace brew::jit
