// Unit tests for the optimization passes (§IV) on hand-built captured
// functions, plus end-to-end equivalence checks after each pass.
#include <gtest/gtest.h>

#include "core/rewriter.hpp"
#include "ir/captured.hpp"

namespace brew {
namespace {

using isa::Cond;
using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

ir::CapturedFunction singleBlock(std::vector<isa::Instruction> instrs) {
  ir::CapturedFunction fn;
  const int id = fn.newBlock(0x1000, 0);
  fn.block(id).instrs.assign(instrs.begin(), instrs.end());
  fn.block(id).term.kind = ir::Terminator::Kind::Ret;
  return fn;
}

PassOptions only(bool peephole, bool deadFlags, bool loads,
                 bool zeroAdd = false) {
  PassOptions options;
  options.peephole = peephole;
  options.deadFlagWriters = deadFlags;
  options.redundantLoads = loads;
  options.foldZeroAdd = zeroAdd;
  options.mergeBlocks = false;  // structure-sensitive tests pick passes
  options.slpVectorize = false;
  options.crossIterLoads = false;
  return options;
}

TEST(Peephole, RemovesSameRegisterMoves) {
  ir::CapturedFunction fn = singleBlock({
      makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rax),
                Operand::makeReg(Reg::rax)),
      makeInstr(Mnemonic::Movapd, 16, Operand::makeReg(Reg::xmm1),
                Operand::makeReg(Reg::xmm1)),
      makeInstr(Mnemonic::Add, 8, Operand::makeReg(Reg::rax),
                Operand::makeReg(Reg::rbx)),
  });
  runPasses(fn, only(true, false, false));
  EXPECT_EQ(fn.block(0).instrs.size(), 1u);
  EXPECT_EQ(fn.block(0).instrs[0].mnemonic, Mnemonic::Add);
}

TEST(Peephole, Keeps32BitSameRegisterMov) {
  // mov eax, eax zero-extends: NOT a no-op.
  ir::CapturedFunction fn = singleBlock({
      makeInstr(Mnemonic::Mov, 4, Operand::makeReg(Reg::rax),
                Operand::makeReg(Reg::rax)),
  });
  runPasses(fn, only(true, false, false));
  EXPECT_EQ(fn.block(0).instrs.size(), 1u);
}

TEST(DeadFlags, RemovesUnconsumedCompare) {
  ir::CapturedFunction fn = singleBlock({
      makeInstr(Mnemonic::Cmp, 8, Operand::makeReg(Reg::rax),
                Operand::makeReg(Reg::rbx)),
      makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rcx),
                Operand::makeImm(1)),
  });
  runPasses(fn, only(false, true, false));
  ASSERT_EQ(fn.block(0).instrs.size(), 1u);
  EXPECT_EQ(fn.block(0).instrs[0].mnemonic, Mnemonic::Mov);
}

TEST(DeadFlags, KeepsCompareFeedingTerminator) {
  ir::CapturedFunction fn;
  const int head = fn.newBlock(0x1000, 0);
  const int a = fn.newBlock(0x1010, 0);
  const int b = fn.newBlock(0x1020, 0);
  fn.block(head).instrs = {makeInstr(Mnemonic::Cmp, 8,
                                     Operand::makeReg(Reg::rax),
                                     Operand::makeReg(Reg::rbx))};
  fn.block(head).term = {ir::Terminator::Kind::CondJmp, Cond::E, a, b};
  fn.block(a).term.kind = ir::Terminator::Kind::Ret;
  fn.block(b).term.kind = ir::Terminator::Kind::Ret;
  runPasses(fn, only(false, true, false));
  EXPECT_EQ(fn.block(head).instrs.size(), 1u);
}

TEST(DeadFlags, KeepsCompareConsumedAcrossJump) {
  // Block 0: cmp; jmp block 1. Block 1: setcc reads the flags.
  ir::CapturedFunction fn;
  const int head = fn.newBlock(0x1000, 0);
  const int next = fn.newBlock(0x1010, 0);
  fn.block(head).instrs = {makeInstr(Mnemonic::Cmp, 8,
                                     Operand::makeReg(Reg::rax),
                                     Operand::makeReg(Reg::rbx))};
  fn.block(head).term = {ir::Terminator::Kind::Jmp, Cond::O, next, -1};
  isa::Instruction setcc =
      makeInstr(Mnemonic::Setcc, 1, Operand::makeReg(Reg::rax));
  setcc.cond = Cond::E;
  fn.block(next).instrs = {setcc};
  fn.block(next).term.kind = ir::Terminator::Kind::Ret;
  runPasses(fn, only(false, true, false));
  EXPECT_EQ(fn.block(head).instrs.size(), 1u)
      << "cross-block consumer must keep the compare alive";
}

TEST(RedundantLoads, ForwardsSecondIdenticalLoad) {
  const MemOperand m{.base = Reg::rdi, .disp = 16};
  ir::CapturedFunction fn = singleBlock({
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm0),
                Operand::makeMem(m)),
      makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeReg(Reg::xmm0)),
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm2),
                Operand::makeMem(m)),
  });
  runPasses(fn, only(false, false, true));
  ASSERT_EQ(fn.block(0).instrs.size(), 3u);
  // The second load became a register copy.
  EXPECT_EQ(fn.block(0).instrs[2].mnemonic, Mnemonic::Movapd);
  EXPECT_EQ(fn.block(0).instrs[2].ops[1].reg, Reg::xmm0);
}

TEST(RedundantLoads, InvalidatedByStore) {
  const MemOperand m{.base = Reg::rdi, .disp = 16};
  ir::CapturedFunction fn = singleBlock({
      makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rax),
                Operand::makeMem(m)),
      makeInstr(Mnemonic::Mov, 8, Operand::makeMem(m),
                Operand::makeReg(Reg::rcx)),
      makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rbx),
                Operand::makeMem(m)),
  });
  runPasses(fn, only(false, false, true));
  // The second load must stay a real load.
  EXPECT_EQ(fn.block(0).instrs[2].mnemonic, Mnemonic::Mov);
  EXPECT_TRUE(fn.block(0).instrs[2].ops[1].isMem());
}

TEST(RedundantLoads, InvalidatedByAddressRegisterWrite) {
  const MemOperand m{.base = Reg::rdi, .disp = 16};
  ir::CapturedFunction fn = singleBlock({
      makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rax),
                Operand::makeMem(m)),
      makeInstr(Mnemonic::Add, 8, Operand::makeReg(Reg::rdi),
                Operand::makeImm(8)),
      makeInstr(Mnemonic::Mov, 8, Operand::makeReg(Reg::rbx),
                Operand::makeMem(m)),
  });
  runPasses(fn, only(false, false, true));
  EXPECT_TRUE(fn.block(0).instrs[2].ops[1].isMem());
}

TEST(RedundantLoads, PoolConstantsSurviveStores) {
  MemOperand pool;
  pool.ripRelative = true;
  pool.poolSlot = 0;
  const MemOperand store{.base = Reg::rsi};
  ir::CapturedFunction fn = singleBlock({
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm0),
                Operand::makeMem(pool)),
      makeInstr(Mnemonic::Movsd, 8, Operand::makeMem(store),
                Operand::makeReg(Reg::xmm0)),
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeMem(pool)),
  });
  fn.addPoolConstant(0x3FF0000000000000ull);  // 1.0
  runPasses(fn, only(false, false, true));
  // Pool slots are immutable: the reload is forwarded despite the store.
  EXPECT_EQ(fn.block(0).instrs[2].mnemonic, Mnemonic::Movapd);
}

TEST(ZeroAdd, FoldsSeededAccumulator) {
  ir::CapturedFunction fn;
  const int id = fn.newBlock(0x1000, 0);
  const int zeroSlot = fn.addPoolConstant(0, 0);
  MemOperand poolRef;
  poolRef.ripRelative = true;
  poolRef.poolSlot = zeroSlot;
  const MemOperand load{.base = Reg::rdi};
  fn.block(id).instrs = {
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeMem(poolRef)),
      makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeMem(load)),
  };
  fn.block(id).term.kind = ir::Terminator::Kind::Ret;
  runPasses(fn, only(false, false, false, /*zeroAdd=*/true));
  ASSERT_EQ(fn.block(0).instrs.size(), 1u);
  EXPECT_EQ(fn.block(0).instrs[0].mnemonic, Mnemonic::Movsd);
  EXPECT_TRUE(fn.block(0).instrs[0].ops[1].isMem());
}

TEST(ZeroAdd, RegisterSourceBecomesMovq) {
  ir::CapturedFunction fn;
  const int id = fn.newBlock(0x1000, 0);
  const int zeroSlot = fn.addPoolConstant(0, 0);
  MemOperand poolRef;
  poolRef.ripRelative = true;
  poolRef.poolSlot = zeroSlot;
  fn.block(id).instrs = {
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeMem(poolRef)),
      makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeReg(Reg::xmm0)),
  };
  fn.block(id).term.kind = ir::Terminator::Kind::Ret;
  runPasses(fn, only(false, false, false, true));
  ASSERT_EQ(fn.block(0).instrs.size(), 1u);
  EXPECT_EQ(fn.block(0).instrs[0].mnemonic, Mnemonic::Movq);
}

TEST(ZeroAdd, InterveningUseBlocksTheFold) {
  ir::CapturedFunction fn;
  const int id = fn.newBlock(0x1000, 0);
  const int zeroSlot = fn.addPoolConstant(0, 0);
  MemOperand poolRef;
  poolRef.ripRelative = true;
  poolRef.poolSlot = zeroSlot;
  fn.block(id).instrs = {
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeMem(poolRef)),
      // xmm1 is read here: the seed is live, no fold allowed.
      makeInstr(Mnemonic::Mulsd, 8, Operand::makeReg(Reg::xmm2),
                Operand::makeReg(Reg::xmm1)),
      makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeReg(Reg::xmm0)),
  };
  fn.block(id).term.kind = ir::Terminator::Kind::Ret;
  runPasses(fn, only(false, false, false, true));
  EXPECT_EQ(fn.block(0).instrs.size(), 3u);
  EXPECT_EQ(fn.block(0).instrs[0].mnemonic, Mnemonic::Movsd);
  EXPECT_EQ(fn.block(0).instrs[2].mnemonic, Mnemonic::Addsd);
}

TEST(ZeroAdd, NonZeroPoolConstantNotTouched) {
  ir::CapturedFunction fn;
  const int id = fn.newBlock(0x1000, 0);
  const int slot = fn.addPoolConstant(0x3FF0000000000000ull);  // 1.0
  MemOperand poolRef;
  poolRef.ripRelative = true;
  poolRef.poolSlot = slot;
  fn.block(id).instrs = {
      makeInstr(Mnemonic::Movsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeMem(poolRef)),
      makeInstr(Mnemonic::Addsd, 8, Operand::makeReg(Reg::xmm1),
                Operand::makeReg(Reg::xmm0)),
  };
  fn.block(id).term.kind = ir::Terminator::Kind::Ret;
  runPasses(fn, only(false, false, false, true));
  EXPECT_EQ(fn.block(0).instrs.size(), 2u);
}

TEST(MergeBlocks, CollapsesJmpChains) {
  PassOptions options;
  options.peephole = false;
  options.deadFlagWriters = false;
  options.redundantLoads = false;
  options.foldZeroAdd = false;
  options.mergeBlocks = true;

  ir::CapturedFunction fn;
  const int a = fn.newBlock(1, 0);
  const int b = fn.newBlock(2, 0);
  const int c = fn.newBlock(3, 0);
  fn.setEntry(a);
  fn.block(a).instrs = {makeInstr(Mnemonic::Mov, 8,
                                  Operand::makeReg(Reg::rax),
                                  Operand::makeImm(1))};
  fn.block(a).term = {ir::Terminator::Kind::Jmp, Cond::O, b, -1};
  fn.block(b).instrs = {makeInstr(Mnemonic::Add, 8,
                                  Operand::makeReg(Reg::rax),
                                  Operand::makeImm(2))};
  fn.block(b).term = {ir::Terminator::Kind::Jmp, Cond::O, c, -1};
  fn.block(c).instrs = {makeInstr(Mnemonic::Add, 8,
                                  Operand::makeReg(Reg::rax),
                                  Operand::makeImm(4))};
  fn.block(c).term.kind = ir::Terminator::Kind::Ret;

  runPasses(fn, options);
  EXPECT_EQ(fn.block(a).instrs.size(), 3u);
  EXPECT_EQ(fn.block(a).term.kind, ir::Terminator::Kind::Ret);
  // The merged function still emits and runs.
  auto mem = ir::emit(fn, 1 << 16);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->entry<int64_t (*)()>()(), 7);
}

TEST(MergeBlocks, SharedSuccessorNotMerged) {
  PassOptions options;
  options.peephole = false;
  options.deadFlagWriters = false;
  options.redundantLoads = false;
  options.foldZeroAdd = false;
  options.mergeBlocks = true;

  // Two predecessors jump to the same block: no merge allowed.
  ir::CapturedFunction fn;
  const int head = fn.newBlock(1, 0);
  const int left = fn.newBlock(2, 0);
  const int join = fn.newBlock(3, 0);
  fn.setEntry(head);
  fn.block(head).instrs = {makeInstr(Mnemonic::Test, 8,
                                     Operand::makeReg(Reg::rdi),
                                     Operand::makeReg(Reg::rdi))};
  fn.block(head).term = {ir::Terminator::Kind::CondJmp, Cond::E, join, left};
  fn.block(left).instrs = {makeInstr(Mnemonic::Add, 8,
                                     Operand::makeReg(Reg::rdi),
                                     Operand::makeImm(1))};
  fn.block(left).term = {ir::Terminator::Kind::Jmp, Cond::O, join, -1};
  fn.block(join).instrs = {makeInstr(Mnemonic::Mov, 8,
                                     Operand::makeReg(Reg::rax),
                                     Operand::makeReg(Reg::rdi))};
  fn.block(join).term.kind = ir::Terminator::Kind::Ret;

  runPasses(fn, options);
  EXPECT_FALSE(fn.block(join).instrs.empty());
  auto mem = ir::emit(fn, 1 << 16);
  ASSERT_TRUE(mem.ok());
  auto f = mem->entry<int64_t (*)(int64_t)>();
  EXPECT_EQ(f(0), 0);
  EXPECT_EQ(f(5), 6);
}

}  // namespace
}  // namespace brew
