// Differential tests for the SLP vectorizer and cross-iteration
// redundant-load elimination (§IV). The contract under test is strict:
// the optimized capture must produce byte-identical results to the
// scalar one — FP addition is not reassociated, lane extraction replays
// the original accumulation order — including on the bailout shapes the
// packer must refuse (overlapping stores, non-contiguous lanes,
// out-of-order consumption).
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "core/rewriter.hpp"
#include "ir/captured.hpp"
#include "support/prng.hpp"

namespace brew {
namespace {

using isa::makeInstr;
using isa::MemOperand;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

uint64_t f64bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}

uint32_t f32bits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  return bits;
}

Operand xmm(int n) { return Operand::makeReg(isa::xmmFromNum(n)); }

Operand poolRef(int slot) {
  MemOperand m;
  m.ripRelative = true;
  m.poolSlot = slot;
  return Operand::makeMem(m);
}

Operand memAt(int32_t disp) {
  return Operand::makeMem(MemOperand{.base = Reg::rdi, .disp = disp});
}

// Scalar options: the legacy pipeline with both new passes off.
PassOptions scalarOptions() {
  PassOptions options;
  options.slpVectorize = false;
  options.crossIterLoads = false;
  return options;
}

// Builds the post-unroll shape the tracer captures for an N-point f64
// stencil: per point `movsd xmm0, [rdi+disp]; mulsd xmm0, [pool coeff]`,
// accumulated left-to-right into xmm1, result returned in xmm0.
ir::CapturedFunction buildF64Chain(
    const std::vector<std::pair<int32_t, double>>& points) {
  ir::CapturedFunction fn;
  const int id = fn.newBlock(0x1000, 0);
  auto& ins = fn.block(id).instrs;
  bool first = true;
  for (const auto& [disp, coeff] : points) {
    const int slot = fn.addPoolConstant(f64bits(coeff));
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, xmm(0), memAt(disp)));
    ins.push_back(makeInstr(Mnemonic::Mulsd, 8, xmm(0), poolRef(slot)));
    if (first)
      ins.push_back(makeInstr(Mnemonic::Movapd, 16, xmm(1), xmm(0)));
    else
      ins.push_back(makeInstr(Mnemonic::Addsd, 8, xmm(1), xmm(0)));
    first = false;
  }
  ins.push_back(makeInstr(Mnemonic::Movapd, 16, xmm(0), xmm(1)));
  fn.block(id).term.kind = ir::Terminator::Kind::Ret;
  return fn;
}

// Same shape in f32: seed the accumulator with a plain load, then
// mul-accumulate one chain per point.
ir::CapturedFunction buildF32Chain(
    int32_t seedDisp, const std::vector<std::pair<int32_t, float>>& points) {
  ir::CapturedFunction fn;
  const int id = fn.newBlock(0x1000, 0);
  auto& ins = fn.block(id).instrs;
  ins.push_back(makeInstr(Mnemonic::Movss, 4, xmm(1), memAt(seedDisp)));
  for (const auto& [disp, coeff] : points) {
    const int slot = fn.addPoolConstant(f32bits(coeff));
    ins.push_back(makeInstr(Mnemonic::Movss, 4, xmm(0), memAt(disp)));
    ins.push_back(makeInstr(Mnemonic::Mulss, 4, xmm(0), poolRef(slot)));
    ins.push_back(makeInstr(Mnemonic::Addss, 4, xmm(1), xmm(0)));
  }
  ins.push_back(makeInstr(Mnemonic::Movaps, 16, xmm(0), xmm(1)));
  fn.block(id).term.kind = ir::Terminator::Kind::Ret;
  return fn;
}

size_t countMnemonic(const ir::CapturedFunction& fn, Mnemonic mn) {
  size_t n = 0;
  for (int b = 0; b < fn.blockCount(); ++b)
    for (const isa::Instruction& in : fn.block(b).instrs)
      if (in.mnemonic == mn) ++n;
  return n;
}

// Runs `build()` twice — scalar pipeline vs full pipeline — executes
// both over the same randomized buffer and requires bitwise-equal
// results (return value and, for kernels that store, the whole buffer).
template <typename BuildFn>
void expectDifferentialEqual(BuildFn build, uint64_t seed,
                             bool expectPacked) {
  ir::CapturedFunction scalar = build();
  runPasses(scalar, scalarOptions());
  ir::CapturedFunction vectorized = build();
  runPasses(vectorized, PassOptions{});
  if (expectPacked) {
    EXPECT_GT(countMnemonic(vectorized, Mnemonic::Mulpd) +
                  countMnemonic(vectorized, Mnemonic::Mulps) +
                  countMnemonic(vectorized, Mnemonic::Movupd),
              0u)
        << "expected at least one packed op in:\n" << vectorized.dump();
  }

  auto memScalar = ir::emit(scalar, 1 << 16);
  auto memVector = ir::emit(vectorized, 1 << 16);
  ASSERT_TRUE(memScalar.ok());
  ASSERT_TRUE(memVector.ok());

  Prng rng(seed);
  std::vector<double> bufA(1024), bufB(1024);
  for (size_t i = 0; i < bufA.size(); ++i) {
    // Mixed magnitudes so reassociation would actually change bits.
    const double v = (rng.uniform() - 0.5) *
                     (i % 7 == 0 ? 1e9 : i % 3 == 0 ? 1e-6 : 1.0);
    bufA[i] = v;
    bufB[i] = v;
  }
  // rdi points mid-buffer so negative displacements stay in bounds.
  using Fn = double (*)(double*);
  const double a = memScalar->entry<Fn>()(bufA.data() + 512);
  const double b = memVector->entry<Fn>()(bufB.data() + 512);
  EXPECT_EQ(f64bits(a), f64bits(b))
      << "scalar " << a << " vs vectorized " << b << "\nscalar:\n"
      << scalar.dump() << "\nvectorized:\n" << vectorized.dump();
  EXPECT_EQ(std::memcmp(bufA.data(), bufB.data(),
                        bufA.size() * sizeof(double)),
            0)
      << "stored bytes diverge";
}

TEST(Vectorize, PairsAdjacentF64Loads) {
  // The 5-point stencil shape: two adjacent pairs + one leftover.
  auto build = [] {
    return buildF64Chain({{0, -1.0},
                          {-8, 0.25},
                          {8, 0.25},
                          {-4000, 0.25},
                          {4000, 0.25}});
  };
  ir::CapturedFunction fn = build();
  runPasses(fn, PassOptions{});
  EXPECT_GT(countMnemonic(fn, Mnemonic::Mulpd), 0u) << fn.dump();
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Movupd), 1u) << fn.dump();
  expectDifferentialEqual(build, 42, /*expectPacked=*/true);
}

TEST(Vectorize, PacksF32QuadWhenContiguous) {
  auto build = [] {
    return buildF32Chain(
        64, {{0, 0.5f}, {4, 0.25f}, {8, 0.125f}, {12, 2.0f}});
  };
  ir::CapturedFunction fn = build();
  runPasses(fn, PassOptions{});
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Mulps), 1u) << fn.dump();
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Movups), 1u) << fn.dump();

  // f32 differential: compare the 32-bit return lane.
  ir::CapturedFunction scalar = build();
  runPasses(scalar, scalarOptions());
  auto memScalar = ir::emit(scalar, 1 << 16);
  auto memVector = ir::emit(fn, 1 << 16);
  ASSERT_TRUE(memScalar.ok());
  ASSERT_TRUE(memVector.ok());
  Prng rng(7);
  std::vector<float> buf(256);
  for (auto& v : buf) v = static_cast<float>(rng.uniform() - 0.5) * 100.0f;
  using Fn = float (*)(float*);
  const float a = memScalar->entry<Fn>()(buf.data() + 8);
  const float b = memVector->entry<Fn>()(buf.data() + 8);
  EXPECT_EQ(f32bits(a), f32bits(b));
}

TEST(Vectorize, BailsOutOnNonContiguousF32Quad) {
  // {0,4,12,16} has a lane gap: the quad must stay scalar but pairs of
  // f64 packing do not apply to f32, so no packed multiply may appear.
  auto build = [] {
    return buildF32Chain(
        64, {{0, 0.5f}, {4, 0.25f}, {12, 0.125f}, {16, 2.0f}});
  };
  ir::CapturedFunction fn = build();
  runPasses(fn, PassOptions{});
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Mulps), 0u) << fn.dump();
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Movups), 0u) << fn.dump();
}

TEST(Vectorize, BailsOutOnOutOfOrderF32Lanes) {
  // Contiguous addresses consumed out of order: the shufps rotation
  // scheme cannot replay the original add order, so the group bails.
  auto build = [] {
    return buildF32Chain(
        64, {{4, 0.5f}, {0, 0.25f}, {8, 0.125f}, {12, 2.0f}});
  };
  ir::CapturedFunction fn = build();
  runPasses(fn, PassOptions{});
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Mulps), 0u) << fn.dump();
}

TEST(Vectorize, PacksAdjacentStores) {
  auto build = [] {
    ir::CapturedFunction fn;
    const int id = fn.newBlock(0x1000, 0);
    auto& ins = fn.block(id).instrs;
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, xmm(1), memAt(0)));
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, xmm(2), memAt(8)));
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, memAt(256), xmm(1)));
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, memAt(264), xmm(2)));
    ins.push_back(makeInstr(Mnemonic::Movapd, 16, xmm(0), xmm(1)));
    fn.block(id).term.kind = ir::Terminator::Kind::Ret;
    return fn;
  };
  ir::CapturedFunction fn = build();
  runPasses(fn, PassOptions{});
  // The two scalar stores fused into one unaligned 16-byte store.
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Movupd), 1u) << fn.dump();
  expectDifferentialEqual(build, 11, /*expectPacked=*/true);
}

TEST(Vectorize, BailsOutOnOverlappingStores) {
  // Stores 4 bytes apart overlap as a 16-byte pair: must stay scalar and
  // still produce the scalar run's exact final memory image.
  auto build = [] {
    ir::CapturedFunction fn;
    const int id = fn.newBlock(0x1000, 0);
    auto& ins = fn.block(id).instrs;
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, xmm(1), memAt(0)));
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, xmm(2), memAt(8)));
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, memAt(256), xmm(1)));
    ins.push_back(makeInstr(Mnemonic::Movsd, 8, memAt(260), xmm(2)));
    ins.push_back(makeInstr(Mnemonic::Movapd, 16, xmm(0), xmm(1)));
    fn.block(id).term.kind = ir::Terminator::Kind::Ret;
    return fn;
  };
  ir::CapturedFunction fn = build();
  runPasses(fn, PassOptions{});
  EXPECT_EQ(countMnemonic(fn, Mnemonic::Movupd), 0u) << fn.dump();
  expectDifferentialEqual(build, 13, /*expectPacked=*/false);
}

TEST(Vectorize, CrossIterPoolHoistKeepsResult) {
  // One coefficient shared by four points: cross-iteration elimination
  // hoists it into a register; the sum must not move by a bit.
  auto build = [] {
    return buildF64Chain({{0, -1.0},
                          {-8, 0.25},
                          {8, 0.25},
                          {16, 0.25},
                          {24, 0.25},
                          {4000, 0.125}});
  };
  ir::CapturedFunction scalar = build();
  runPasses(scalar, scalarOptions());
  ir::CapturedFunction optimized = build();
  runPasses(optimized, PassOptions{});
  // Fewer pool-memory references after hoisting.
  auto poolRefs = [](const ir::CapturedFunction& fn) {
    size_t n = 0;
    for (int b = 0; b < fn.blockCount(); ++b)
      for (const isa::Instruction& in : fn.block(b).instrs)
        for (unsigned o = 0; o < in.nops; ++o)
          if (in.ops[o].isMem() && in.ops[o].mem.poolSlot >= 0) ++n;
    return n;
  };
  EXPECT_LT(poolRefs(optimized), poolRefs(scalar)) << optimized.dump();
  expectDifferentialEqual(build, 17, /*expectPacked=*/true);
}

TEST(Vectorize, RandomizedStencilsStayBitExact) {
  // Randomized stencil shapes: random point counts, displacements
  // (including adjacent, strided and duplicate-coefficient mixes) and
  // magnitudes. Every shape must come out bit-exact, packed or not.
  Prng rng(0xb3e30u);
  for (int round = 0; round < 40; ++round) {
    const int points = 2 + static_cast<int>(rng.below(5));
    std::vector<std::pair<int32_t, double>> spec;
    std::vector<int32_t> used;
    for (int p = 0; p < points; ++p) {
      int32_t disp;
      bool fresh = true;
      do {
        disp = static_cast<int32_t>(rng.range(-24, 24)) * 8;
        fresh = true;
        for (int32_t u : used) fresh = fresh && u != disp;
      } while (!fresh);
      used.push_back(disp);
      const double coeff = rng.chance(0.4)
                               ? 0.25
                               : (rng.uniform() - 0.5) * 3.0;
      spec.emplace_back(disp, coeff);
    }
    expectDifferentialEqual([&spec] { return buildF64Chain(spec); },
                            1000 + static_cast<uint64_t>(round),
                            /*expectPacked=*/false);
  }
}

}  // namespace
}  // namespace brew
