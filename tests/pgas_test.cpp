// PGAS substrate tests + rewriting of the checked accessor (the DASH
// operator[] story from §I/§V) and §VI domain-map re-specialization.
#include <gtest/gtest.h>

#include "core/rewriter.hpp"
#include "pgas/domain_map.hpp"
#include "pgas/global_array.hpp"
#include "pgas/pgas.h"
#include "pgas/runtime.hpp"

namespace brew::pgas {
namespace {

Runtime::Options smallOptions() {
  Runtime::Options options;
  options.ranks = 4;
  options.myRank = 0;
  options.elementsPerRank = 256;
  options.remoteLatency = 8;
  return options;
}

void fillGlobal(Runtime& rt) {
  for (int r = 0; r < rt.ranks(); ++r) {
    brew_pgas_view v = rt.view(r);
    for (long i = v.local_start; i < v.local_end; ++i)
      rt.segment(r)[i - v.local_start] = static_cast<double>(i) * 0.5;
  }
}

TEST(Pgas, CheckedReadLocalAndRemote) {
  Runtime rt(smallOptions());
  fillGlobal(rt);
  brew_pgas_view v = rt.view(0);
  EXPECT_DOUBLE_EQ(brew_pgas_read(&v, 10), 5.0);       // local
  EXPECT_DOUBLE_EQ(brew_pgas_read(&v, 300), 150.0);    // rank 1
  EXPECT_DOUBLE_EQ(brew_pgas_read(&v, 1000), 500.0);   // rank 3
  EXPECT_EQ(rt.stats().remoteReads, 2u);
}

TEST(Pgas, CheckedWriteRoutesToOwner) {
  Runtime rt(smallOptions());
  brew_pgas_view v = rt.view(0);
  brew_pgas_write(&v, 5, 1.5);
  brew_pgas_write(&v, 700, 2.5);  // rank 2
  EXPECT_DOUBLE_EQ(rt.segment(0)[5], 1.5);
  EXPECT_DOUBLE_EQ(rt.segment(2)[700 - 512], 2.5);
  EXPECT_EQ(rt.stats().remoteWrites, 1u);
}

TEST(Pgas, SumRangeMatchesDirect) {
  Runtime rt(smallOptions());
  fillGlobal(rt);
  brew_pgas_view v = rt.view(0);
  const double sum = brew_pgas_sum_range(&v, 0, 256, &brew_pgas_read);
  double expect = 0.0;
  for (long i = 0; i < 256; ++i) expect += static_cast<double>(i) * 0.5;
  EXPECT_DOUBLE_EQ(sum, expect);
}

Config accessorConfig() {
  Config config;
  config.setParamKnownPtr(0, sizeof(brew_pgas_view));
  config.setReturnKind(ReturnKind::Float);
  config.setFunctionOptions(
      reinterpret_cast<const void*>(&brew_pgas_remote_read),
      FunctionOptions{.inlineCalls = false, .pure = true});
  return config;
}

TEST(PgasRewrite, SpecializedAccessorMatchesGeneric) {
  Runtime rt(smallOptions());
  fillGlobal(rt);
  brew_pgas_view v = rt.view(1);  // interior rank: both neighbours remote

  Rewriter rewriter{accessorConfig()};
  auto rewritten = rewriter.rewrite(
      reinterpret_cast<const void*>(&brew_pgas_read), &v, 0L);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto read2 = rewritten->as<brew_pgas_read_fn>();

  for (long i = 0; i < rt.globalLength(); i += 7)
    ASSERT_DOUBLE_EQ(read2(&v, i), brew_pgas_read(&v, i)) << "i=" << i;
  // Remote fallback must still be a real (kept) call.
  EXPECT_GE(rewritten->traceStats().keptCalls, 1u);
  // The bounds check must have been folded to immediates: the view struct
  // fields are no longer loaded.
  EXPECT_GE(rewritten->traceStats().elidedInstructions, 2u);
}

TEST(PgasRewrite, SpecializedAccessorIgnoresViewArgument) {
  // The view is baked in: passing a different view pointer at call time
  // must not change the result (paper Fig. 3 semantics).
  Runtime rt(smallOptions());
  fillGlobal(rt);
  brew_pgas_view v0 = rt.view(0);
  Rewriter rewriter{accessorConfig()};
  auto rewritten = rewriter.rewrite(
      reinterpret_cast<const void*>(&brew_pgas_read), &v0, 0L);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto read2 = rewritten->as<brew_pgas_read_fn>();
  EXPECT_DOUBLE_EQ(read2(nullptr, 10), brew_pgas_read(&v0, 10));
}

TEST(DomainMapTest, OwnershipAndViews) {
  Runtime rt(smallOptions());
  DomainMap map(rt);
  EXPECT_EQ(map.ownerOf(0), 0);
  EXPECT_EQ(map.ownerOf(255), 0);
  EXPECT_EQ(map.ownerOf(256), 1);
  EXPECT_EQ(map.ownerOf(1023), 3);
  EXPECT_EQ(map.view(2).local_start, 512);
  EXPECT_EQ(map.view(2).local_end, 768);
}

TEST(DomainMapTest, RedistributeMigratesData) {
  Runtime rt(smallOptions());
  DomainMap map(rt);
  fillGlobal(rt);
  map.redistribute({0, 100, 512, 768, 1024});
  // Global value at index 200 now lives on rank 1.
  EXPECT_EQ(map.ownerOf(200), 1);
  brew_pgas_view v = map.view(1);
  EXPECT_DOUBLE_EQ(v.local_base[200 - v.local_start], 100.0);
}

TEST(DomainMapTest, AccessorRespecializesOnRedistribute) {
  Runtime rt(smallOptions());
  DomainMap map(rt);
  fillGlobal(rt);

  brew_pgas_read_fn f1 = map.accessor(0);
  EXPECT_TRUE(map.lastSpecializationSucceeded());
  brew_pgas_view v0 = map.view(0);
  EXPECT_DOUBLE_EQ(f1(&v0, 10), 5.0);
  EXPECT_EQ(map.respecializations(), 1);

  // Cached until redistribution.
  (void)map.accessor(0);
  EXPECT_EQ(map.respecializations(), 1);

  map.redistribute({0, 100, 512, 768, 1024});
  brew_pgas_read_fn f2 = map.accessor(0);
  EXPECT_EQ(map.respecializations(), 2);
  brew_pgas_view v0b = map.view(0);
  // index 10 still on rank 0; index 200 moved away and must go remote.
  EXPECT_DOUBLE_EQ(f2(&v0b, 10), 5.0);
  rt.resetStats();
  EXPECT_DOUBLE_EQ(f2(&v0b, 200), 100.0);
  EXPECT_EQ(rt.stats().remoteReads, 1u);
}

TEST(DomainMapTest, RejectsBadBoundaries) {
  Runtime rt(smallOptions());
  DomainMap map(rt);
  EXPECT_THROW(map.redistribute({0, 700, 512, 768, 1024}),
               std::invalid_argument);
  EXPECT_THROW(map.redistribute({1, 256, 512, 768, 1024}),
               std::invalid_argument);
}

TEST(GlobalArrayTest, CheckedAccessAndLocality) {
  Runtime rt(smallOptions());
  fillGlobal(rt);
  GlobalArray<double> array(rt, 1);
  EXPECT_EQ(array.size(), rt.globalLength());
  EXPECT_EQ(array.localBegin(), 256);
  EXPECT_EQ(array.localEnd(), 512);
  EXPECT_TRUE(array.isLocal(300));
  EXPECT_FALSE(array.isLocal(100));
  EXPECT_DOUBLE_EQ(array[300], 150.0);  // local
  rt.resetStats();
  EXPECT_DOUBLE_EQ(array[100], 50.0);   // remote
  EXPECT_EQ(rt.stats().remoteReads, 1u);
  array.put(301, 9.5);
  EXPECT_DOUBLE_EQ(array[301], 9.5);
}

TEST(GlobalArrayTest, LocalizedReaderSpecializesOnce) {
  Runtime rt(smallOptions());
  fillGlobal(rt);
  GlobalArray<double> array(rt, 0);
  brew_pgas_read_fn r1 = array.localizedReader();
  brew_pgas_read_fn r2 = array.localizedReader();
  EXPECT_EQ(r1, r2);  // cached
  EXPECT_FALSE(array.specializationFailed());
  const brew_pgas_view& v = array.view();
  for (long i = 0; i < rt.globalLength(); i += 13)
    ASSERT_DOUBLE_EQ(r1(&v, i), brew_pgas_read(&v, i)) << i;
  array.invalidate();
  brew_pgas_read_fn r3 = array.localizedReader();
  EXPECT_DOUBLE_EQ(r3(&v, 10), 5.0);
}

}  // namespace
}  // namespace brew::pgas
