// Stencil substrate unit tests: specs, grouping, matrices, sweep drivers.
#include <gtest/gtest.h>

#include <cmath>

#include "stencil/stencil.hpp"
#include "support/prng.hpp"

namespace brew::stencil {
namespace {

TEST(StencilSpec, FivePointShape) {
  const brew_stencil s = fivePoint();
  ASSERT_EQ(s.ps, 5);
  double coeffSum = 0;
  for (int i = 0; i < s.ps; ++i) coeffSum += s.p[i].f;
  EXPECT_DOUBLE_EQ(coeffSum, 0.0);  // conservative stencil
  EXPECT_EQ(s.p[0].dx, 0);
  EXPECT_EQ(s.p[0].dy, 0);
  EXPECT_DOUBLE_EQ(s.p[0].f, -1.0);
}

TEST(StencilSpec, NinePointShape) {
  const brew_stencil s = ninePoint();
  ASSERT_EQ(s.ps, 9);
  double coeffSum = 0;
  for (int i = 0; i < s.ps; ++i) coeffSum += s.p[i].f;
  EXPECT_DOUBLE_EQ(coeffSum, 0.0);
}

TEST(Grouping, ByCoefficient) {
  const brew_gstencil g = groupByCoefficient(fivePoint());
  ASSERT_EQ(g.ng, 2);
  int points = 0;
  for (int gi = 0; gi < g.ng; ++gi) points += g.g[gi].np;
  EXPECT_EQ(points, 5);
  // The group carrying 4 points has the 0.25 coefficient.
  for (int gi = 0; gi < g.ng; ++gi) {
    if (g.g[gi].np == 4) EXPECT_DOUBLE_EQ(g.g[gi].f, 0.25);
    if (g.g[gi].np == 1) EXPECT_DOUBLE_EQ(g.g[gi].f, -1.0);
  }
}

TEST(Grouping, RandomStencilsPreserveSemantics) {
  Prng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const brew_stencil s = randomStencil(rng, 1 + rng.below(16), 2);
    const brew_gstencil g = groupByCoefficient(s);
    int points = 0;
    for (int gi = 0; gi < g.ng; ++gi) points += g.g[gi].np;
    ASSERT_EQ(points, s.ps);

    Matrix m(32, 32);
    m.fillDeterministic(trial);
    for (int y = 3; y < 29; ++y)
      for (int x = 3; x < 29; ++x) {
        const double* cell = m.data() + y * 32 + x;
        ASSERT_NEAR(brew_stencil_apply(cell, 32, &s),
                    brew_stencil_apply_grouped(cell, 32, &g), 1e-12);
      }
  }
}

TEST(MatrixTest, Accessors) {
  Matrix m(8, 4);
  EXPECT_EQ(m.xs(), 8);
  EXPECT_EQ(m.ys(), 4);
  m.at(3, 2) = 5.5;
  EXPECT_DOUBLE_EQ(m.data()[2 * 8 + 3], 5.5);
}

TEST(MatrixTest, FillIsDeterministic) {
  Matrix a(16, 16), b(16, 16);
  a.fillDeterministic(9);
  b.fillDeterministic(9);
  EXPECT_EQ(Matrix::maxAbsDiff(a, b), 0.0);
  b.fillDeterministic(10);
  EXPECT_GT(Matrix::maxAbsDiff(a, b), 0.0);
}

TEST(Sweep, BordersUntouched) {
  const brew_stencil s = fivePoint();
  Matrix src(16, 12), dst(16, 12);
  src.fillDeterministic();
  for (int y = 0; y < 12; ++y)
    for (int x = 0; x < 16; ++x) dst.at(x, y) = -99.0;
  brew_stencil_sweep(dst.data(), src.data(), 16, 12, &brew_stencil_apply,
                     &s);
  for (int x = 0; x < 16; ++x) {
    EXPECT_EQ(dst.at(x, 0), -99.0);
    EXPECT_EQ(dst.at(x, 11), -99.0);
  }
  for (int y = 0; y < 12; ++y) {
    EXPECT_EQ(dst.at(0, y), -99.0);
    EXPECT_EQ(dst.at(15, y), -99.0);
  }
  // Interior written.
  EXPECT_NE(dst.at(5, 5), -99.0);
}

TEST(Sweep, PingPongParity) {
  const brew_stencil s = fivePoint();
  Matrix a(16, 16), b(16, 16);
  a.fillDeterministic();
  // After an odd number of iterations the result lives in b's storage.
  const Matrix& result = runIterations(a, b, 3, &brew_stencil_apply, s);
  EXPECT_EQ(&result, &b);
  Matrix a2(16, 16), b2(16, 16);
  a2.fillDeterministic();
  const Matrix& result2 = runIterations(a2, b2, 4, &brew_stencil_apply, s);
  EXPECT_EQ(&result2, &a2);
}

TEST(Sweep, ManualVariantsAgree) {
  Matrix a(32, 24), b1(32, 24), b2(32, 24);
  a.fillDeterministic(5);
  brew_stencil_sweep_manual_ptr(b1.data(), a.data(), 32, 24,
                                &brew_stencil_apply_manual5);
  brew_stencil_sweep_manual_fused(b2.data(), a.data(), 32, 24);
  // Same kernel expression: bit-exact.
  for (int y = 1; y < 23; ++y)
    for (int x = 1; x < 31; ++x)
      ASSERT_EQ(b1.at(x, y), b2.at(x, y)) << x << "," << y;
}

TEST(Sweep, Checksum) {
  Matrix m(8, 8);
  m.fillDeterministic(1);
  const double c1 = m.interiorChecksum();
  m.at(3, 3) += 1.0;
  EXPECT_NE(m.interiorChecksum(), c1);
  m.at(0, 0) += 1.0;  // border: not part of the checksum
  const double c2 = m.interiorChecksum();
  m.at(0, 0) -= 1.0;
  EXPECT_EQ(m.interiorChecksum(), c2);
}

}  // namespace
}  // namespace brew::stencil
