// Integration: rewrite the REAL gcc-compiled generic stencil kernels (the
// paper's §V-A experiment) and verify numerical equivalence.
#include <gtest/gtest.h>

#include "core/rewriter.hpp"
#include "stencil/stencil.hpp"

namespace brew {
namespace {

using stencil::Matrix;

constexpr int kXs = 64, kYs = 48;

Config specializingConfig(const void* stencilPtr, size_t stencilSize) {
  (void)stencilPtr;
  Config config;
  config.setParamKnown(1);                    // xs (paper Fig. 5, param 2)
  config.setParamKnownPtr(2, stencilSize);    // stencil (param 3, PTR_TOKNOWN)
  return config;
}

TEST(StencilRewrite, SpecializedMatchesGenericFivePoint) {
  const brew_stencil s = stencil::fivePoint();
  Config config = specializingConfig(&s, sizeof s);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(
      reinterpret_cast<const void*>(&brew_stencil_apply), nullptr, kXs, &s);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto app2 = rewritten->as<brew_stencil_fn>();

  Matrix m(kXs, kYs);
  m.fillDeterministic();
  for (int y = 1; y < kYs - 1; ++y) {
    for (int x = 1; x < kXs - 1; ++x) {
      const double* cell = m.data() + y * kXs + x;
      EXPECT_DOUBLE_EQ(app2(cell, kXs, &s),
                       brew_stencil_apply(cell, kXs, &s))
          << "at (" << x << ", " << y << ")";
    }
  }
  // Specialization must fold the stencil loop away: no captured branches,
  // and substantially fewer instructions than the generic path executes.
  EXPECT_EQ(rewritten->traceStats().capturedBranches, 0u);
  EXPECT_GE(rewritten->traceStats().elidedInstructions, 10u);
}

TEST(StencilRewrite, SpecializedSweepIsDropIn) {
  const brew_stencil s = stencil::fivePoint();
  Config config = specializingConfig(&s, sizeof s);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(
      reinterpret_cast<const void*>(&brew_stencil_apply), nullptr, kXs, &s);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();

  Matrix a1(kXs, kYs), b1(kXs, kYs), a2(kXs, kYs), b2(kXs, kYs);
  a1.fillDeterministic();
  a2.fillDeterministic();
  const Matrix& ref =
      stencil::runIterations(a1, b1, 10, &brew_stencil_apply, s);
  const Matrix& got =
      stencil::runIterations(a2, b2, 10, rewritten->as<brew_stencil_fn>(), s);
  EXPECT_EQ(Matrix::maxAbsDiff(ref, got), 0.0);
}

TEST(StencilRewrite, ManualFivePointAgrees) {
  // The hand-written kernel computes the same stencil.
  const brew_stencil s = stencil::fivePoint();
  Matrix m(kXs, kYs);
  m.fillDeterministic(7);
  for (int y = 1; y < kYs - 1; ++y) {
    for (int x = 1; x < kXs - 1; ++x) {
      const double* cell = m.data() + y * kXs + x;
      EXPECT_NEAR(brew_stencil_apply_manual5(cell, kXs),
                  brew_stencil_apply(cell, kXs, &s), 1e-12);
    }
  }
}

TEST(StencilRewrite, GroupedGenericAgreesAndSpecializes) {
  const brew_stencil s = stencil::fivePoint();
  const brew_gstencil g = stencil::groupByCoefficient(s);
  ASSERT_EQ(g.ng, 2);  // -1.0 and 0.25

  Matrix m(kXs, kYs);
  m.fillDeterministic(9);
  for (int y = 1; y < kYs - 1; ++y)
    for (int x = 1; x < kXs - 1; ++x) {
      const double* cell = m.data() + y * kXs + x;
      EXPECT_NEAR(brew_stencil_apply_grouped(cell, kXs, &g),
                  brew_stencil_apply(cell, kXs, &s), 1e-12);
    }

  Config config;
  config.setParamKnown(1);
  config.setParamKnownPtr(2, sizeof g);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(
      reinterpret_cast<const void*>(&brew_stencil_apply_grouped), nullptr,
      kXs, &g);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto app2 = rewritten->as<brew_gstencil_fn>();
  for (int y = 1; y < kYs - 1; ++y)
    for (int x = 1; x < kXs - 1; ++x) {
      const double* cell = m.data() + y * kXs + x;
      EXPECT_DOUBLE_EQ(app2(cell, kXs, &g),
                       brew_stencil_apply_grouped(cell, kXs, &g));
    }
}

class RandomStencilRewrite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomStencilRewrite, SpecializedMatchesGeneric) {
  Prng rng(GetParam());
  const int points = 1 + static_cast<int>(rng.below(12));
  const brew_stencil s = stencil::randomStencil(rng, points, 2);

  Config config;
  config.setParamKnown(1);
  config.setParamKnownPtr(2, sizeof s);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(
      reinterpret_cast<const void*>(&brew_stencil_apply), nullptr, kXs, &s);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto app2 = rewritten->as<brew_stencil_fn>();

  Matrix m(kXs, kYs);
  m.fillDeterministic(GetParam());
  for (int y = 2; y < kYs - 2; ++y)
    for (int x = 2; x < kXs - 2; ++x) {
      const double* cell = m.data() + y * kXs + x;
      ASSERT_DOUBLE_EQ(app2(cell, kXs, &s),
                       brew_stencil_apply(cell, kXs, &s))
          << "seed " << GetParam() << " at (" << x << ", " << y << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStencilRewrite,
                         ::testing::Range<uint64_t>(1, 17));

TEST(StencilRewrite, UnknownStencilStillWorks) {
  // Only xs known: the stencil loop cannot unroll (branch on unknown
  // count), code must keep the loop and still compute correctly.
  const brew_stencil s = stencil::ninePoint();
  Config config;
  config.setParamKnown(1);
  Rewriter rewriter{config};
  auto rewritten = rewriter.rewrite(
      reinterpret_cast<const void*>(&brew_stencil_apply), nullptr, kXs, &s);
  ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
  auto app2 = rewritten->as<brew_stencil_fn>();
  Matrix m(kXs, kYs);
  m.fillDeterministic(3);
  for (int y = 2; y < kYs - 2; ++y)
    for (int x = 2; x < kXs - 2; ++x) {
      const double* cell = m.data() + y * kXs + x;
      ASSERT_DOUBLE_EQ(app2(cell, kXs, &s), brew_stencil_apply(cell, kXs, &s));
    }
  EXPECT_GE(rewritten->traceStats().capturedBranches, 1u);
}

}  // namespace
}  // namespace brew
