// Crash-attribution tests (support/profiler.hpp crash section): each test
// forks a child that executes a generated code blob built to fault, and
// asserts the child (a) died by the expected signal — the handler re-raises
// with the original disposition, it never swallows the crash — and (b) left
// a report naming the specialization, its fingerprint, and the flight
// recorder's recent events. Reports go to the child's stderr (inherited;
// scripts/check_observability.sh greps it there) and to the per-test
// BREW_CRASH_FILE path this suite reads back.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/rewriter.hpp"
#include "jit/assembler.hpp"
#include "support/flight_recorder.hpp"
#include "support/perf_map.hpp"
#include "support/profiler.hpp"

namespace brew {
namespace {

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string crashFilePath(const char* test) {
  return std::string("/tmp/brew_crash_test_") + test + "." +
         std::to_string(::getpid());
}

// Emits a blob that faults: `kind` selects ud2 (SIGILL) or a store through
// a null pointer (SIGSEGV). The blob is registered like any specialization
// so the handler can attribute the PC.
ExecMemory buildFaultingCode(int kind) {
  jit::Assembler as;
  if (kind == SIGILL) {
    static constexpr uint8_t ud2[] = {0x0f, 0x0b};
    as.emitBytes(ud2);
  } else {
    // xor edi, edi ; mov [rdi], rax — a store to address 0.
    static constexpr uint8_t storeNull[] = {0x31, 0xff, 0x48, 0x89, 0x07};
    as.emitBytes(storeNull);
  }
  as.ret();
  auto mem = as.finalizeExecutable();
  if (!mem.ok()) std::abort();
  return std::move(*mem);
}

// Forks; the child registers a faulting blob under `name`, stamps a flight
// event, points the crash report at `reportPath` and jumps into the blob.
// Returns the signal that killed the child (0 on anomaly).
int runCrashChild(int kind, const char* name, const std::string& reportPath) {
  const pid_t pid = ::fork();
  if (pid < 0) return 0;
  if (pid == 0) {
    ExecMemory code = buildFaultingCode(kind);
    registerGeneratedCode(code.data(), code.size(),
                          reinterpret_cast<const void*>(&runCrashChild),
                          0xfeedf00dULL, name);
    prof::setCrashFile(reportPath.c_str());
    flight::record(flight::Event::TestMark, 0x7e57, 1);
    reinterpret_cast<void (*)()>(code.data())();
    ::_exit(0);  // unreachable: the blob faults
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return 0;
  return WIFSIGNALED(status) ? WTERMSIG(status) : 0;
}

TEST(CrashAttribution, SigillInGeneratedCodeIsAttributed) {
  const std::string path = crashFilePath("sigill");
  ASSERT_EQ(runCrashChild(SIGILL, "ud2", path), SIGILL);

  const std::string report = readFile(path);
  ASSERT_FALSE(report.empty()) << "child wrote no crash report";
  EXPECT_NE(report.find("=== brew crash report (SIGILL) ==="),
            std::string::npos);
  // Attribution: the registered provenance name and fingerprint.
  EXPECT_NE(report.find("specialization: "), std::string::npos);
  EXPECT_NE(report.find("ud2"), std::string::npos);
  EXPECT_NE(report.find("config_fingerprint: 0xfeedf00d"), std::string::npos);
  EXPECT_NE(report.find("region: base=0x"), std::string::npos);
  // Runtime history: the flight dump including the child's own marker.
  EXPECT_NE(report.find("flight recorder"), std::string::npos);
  EXPECT_NE(report.find("test.mark"), std::string::npos);
  // Code bytes: the hex window marks the faulting instruction.
  EXPECT_NE(report.find("--- code window ---"), std::string::npos);
  EXPECT_NE(report.find(">0f"), std::string::npos);  // PC at the ud2
  EXPECT_NE(report.find("=== end brew crash report ==="), std::string::npos);
  std::remove(path.c_str());
}

TEST(CrashAttribution, SigsegvNamesFaultAddress) {
  const std::string path = crashFilePath("sigsegv");
  ASSERT_EQ(runCrashChild(SIGSEGV, "nullstore", path), SIGSEGV);

  const std::string report = readFile(path);
  ASSERT_FALSE(report.empty()) << "child wrote no crash report";
  EXPECT_NE(report.find("=== brew crash report (SIGSEGV) ==="),
            std::string::npos);
  EXPECT_NE(report.find("nullstore"), std::string::npos);
  // The store targets address 0.
  EXPECT_NE(report.find("fault_addr: 0x0 "), std::string::npos);
  std::remove(path.c_str());
}

TEST(CrashAttribution, ForeignCrashIsNotClaimed) {
  // A fault with its PC outside every registered region must pass straight
  // through to the default disposition without a brew report: attribution
  // must never claim code it does not own.
  const std::string path = crashFilePath("foreign");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Register a region (installs the handler), then fault in plain C++.
    static const uint8_t blob[16] = {0xc3};
    prof::registerCodeRegion(blob, sizeof blob, "bystander", 1);
    prof::setCrashFile(path.c_str());
    volatile int* p = nullptr;
    *p = 42;  // SIGSEGV with PC in this test binary, not in `blob`
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  EXPECT_EQ(readFile(path), "") << "handler claimed a foreign crash";
  std::remove(path.c_str());
}

TEST(CrashAttribution, ReportIncludesDisassemblyWhenRegistered) {
  // rewriter.cpp static-registers the disassembler callback; referencing a
  // symbol it defines forces its object (and that initializer) into this
  // binary, so child reports carry a disassembly section, not just hex.
  const volatile uint64_t forceLink = PassOptions{}.fingerprint();
  (void)forceLink;
  const std::string path = crashFilePath("disasm");
  ASSERT_EQ(runCrashChild(SIGILL, "disasmcase", path), SIGILL);
  const std::string report = readFile(path);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("--- disassembly ---"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace brew
