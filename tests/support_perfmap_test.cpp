// Parses what the perf-map and jitdump writers actually emit
// (support/perf_map.hpp, support/jitdump.hpp): the jitdump file header
// magic/version/machine, JIT_CODE_LOAD record framing (one record per
// install, totalSize == header + name + code, monotonic timestamps,
// dense code indices, the code bytes round-tripping), the perf-map line
// format, and the provenance symbol name.
//
// The jitdump target directory is read from BREW_JITDUMP when the file
// is first opened (lazily, on the first enabled registration), so this
// suite must be its own binary: the env is set before any registration.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "support/jitdump.hpp"
#include "support/perf_map.hpp"
#include "support/profiler.hpp"

namespace brew {
namespace {

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// tools/perf/util/jitdump.h, version 1. Mirrored here so the test parses
// the bytes independently of the writer's structs.
struct FileHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t totalSize;
  uint32_t elfMach;
  uint32_t pad1;
  uint32_t pid;
  uint64_t timestamp;
  uint64_t flags;
};
static_assert(sizeof(FileHeader) == 40);

struct CodeLoadRecord {
  uint32_t id;
  uint32_t totalSize;
  uint64_t timestamp;
  uint32_t pid;
  uint32_t tid;
  uint64_t vma;
  uint64_t codeAddr;
  uint64_t codeSize;
  uint64_t codeIndex;
};
static_assert(sizeof(CodeLoadRecord) == 56);

struct ParsedRecord {
  CodeLoadRecord fixed;
  std::string name;
  std::vector<uint8_t> code;
};

// One install per blob: three distinct names and code byte patterns.
struct Blob {
  const char* name;
  std::vector<uint8_t> code;
};

std::vector<Blob> testBlobs() {
  return {{"jit_blob_ret", {0xc3}},
          {"jit_blob_nops", {0x90, 0x90, 0x90, 0x90, 0xc3}},
          {"jit_blob_xor", {0x31, 0xc0, 0xc3}}};
}

TEST(JitDump, HeaderAndRecordFraming) {
  char dirTemplate[] = "/tmp/brew_jitdump_test.XXXXXX";
  char* dir = ::mkdtemp(dirTemplate);
  ASSERT_NE(dir, nullptr);
  ::setenv("BREW_JITDUMP", dir, 1);
  setJitDump(true);
  ASSERT_TRUE(jitDumpEnabled());

  const auto blobs = testBlobs();
  for (const auto& b : blobs)
    jitDumpRegister(b.code.data(), b.code.size(), b.name);
  setJitDump(false);
  ::unsetenv("BREW_JITDUMP");

  const std::string path =
      std::string(dir) + "/jit-" + std::to_string(::getpid()) + ".dump";
  const std::string raw = readFile(path);
  ASSERT_GE(raw.size(), sizeof(FileHeader)) << "no jitdump written";

  FileHeader header;
  std::memcpy(&header, raw.data(), sizeof header);
  EXPECT_EQ(header.magic, 0x4A695444u);  // "JiTD" as LE uint32
  EXPECT_EQ(header.version, 1u);
  EXPECT_EQ(header.totalSize, sizeof(FileHeader));
  EXPECT_EQ(header.elfMach, 62u);  // EM_X86_64
  EXPECT_EQ(header.pid, static_cast<uint32_t>(::getpid()));
  EXPECT_GT(header.timestamp, 0u);

  // Walk the record stream by each record's own totalSize — the framing
  // `perf inject --jit` relies on.
  std::vector<ParsedRecord> records;
  size_t off = sizeof(FileHeader);
  while (off < raw.size()) {
    ASSERT_LE(off + sizeof(CodeLoadRecord), raw.size())
        << "truncated record at offset " << off;
    ParsedRecord rec;
    std::memcpy(&rec.fixed, raw.data() + off, sizeof rec.fixed);
    ASSERT_GE(rec.fixed.totalSize, sizeof(CodeLoadRecord));
    ASSERT_LE(off + rec.fixed.totalSize, raw.size())
        << "record overruns the file";
    const char* tail = raw.data() + off + sizeof(CodeLoadRecord);
    rec.name.assign(tail);  // NUL-terminated name
    const size_t nameLen = rec.name.size() + 1;
    const size_t codeLen =
        rec.fixed.totalSize - sizeof(CodeLoadRecord) - nameLen;
    EXPECT_EQ(codeLen, rec.fixed.codeSize);
    rec.code.assign(tail + nameLen, tail + nameLen + codeLen);
    records.push_back(std::move(rec));
    off += rec.fixed.totalSize;
  }
  EXPECT_EQ(off, raw.size());

  ASSERT_EQ(records.size(), blobs.size()) << "one record per install";
  uint64_t prevTs = header.timestamp;
  for (size_t i = 0; i < records.size(); ++i) {
    const ParsedRecord& rec = records[i];
    const Blob& blob = blobs[i];
    EXPECT_EQ(rec.fixed.id, 0u);  // JIT_CODE_LOAD
    EXPECT_EQ(rec.fixed.totalSize,
              sizeof(CodeLoadRecord) + rec.name.size() + 1 + blob.code.size());
    EXPECT_GE(rec.fixed.timestamp, prevTs) << "timestamps must be monotonic";
    prevTs = rec.fixed.timestamp;
    EXPECT_EQ(rec.fixed.pid, static_cast<uint32_t>(::getpid()));
    EXPECT_EQ(rec.fixed.codeIndex, i) << "code indices must be dense";
    EXPECT_EQ(rec.fixed.vma, rec.fixed.codeAddr);
    EXPECT_EQ(rec.fixed.codeAddr,
              reinterpret_cast<uint64_t>(blob.code.data()));
    EXPECT_EQ(rec.name, blob.name);
    EXPECT_EQ(rec.code, blob.code) << "code bytes must round-trip";
  }

  std::remove(path.c_str());
  ::rmdir(dir);
}

TEST(PerfMap, LineFormatMatchesRegistration) {
  setPerfMap(true);
  ASSERT_TRUE(perfMapEnabled());
  static const uint8_t blob[24] = {0xc3};
  perfMapRegister(blob, sizeof blob, "brew::perfmap_probe@deadbeef");
  setPerfMap(false);

  const std::string path =
      "/tmp/perf-" + std::to_string(::getpid()) + ".map";
  const std::string map = readFile(path);
  ASSERT_FALSE(map.empty()) << "perf map was not written";

  // Find our line and parse it back: "<start-hex> <size-hex> <name>".
  bool found = false;
  size_t pos = 0;
  while (pos < map.size()) {
    size_t eol = map.find('\n', pos);
    if (eol == std::string::npos) eol = map.size();
    const std::string line = map.substr(pos, eol - pos);
    pos = eol + 1;
    uintptr_t start = 0;
    size_t size = 0;
    char name[128] = {0};
    if (std::sscanf(line.c_str(), "%" SCNxPTR " %zx %127s", &start, &size,
                    name) != 3)
      continue;
    if (std::strcmp(name, "brew::perfmap_probe@deadbeef") != 0) continue;
    EXPECT_EQ(start, reinterpret_cast<uintptr_t>(blob));
    EXPECT_EQ(size, sizeof blob);
    found = true;
  }
  EXPECT_TRUE(found) << "registered symbol missing from " << path;
}

TEST(PerfMap, SymbolNameCarriesProvenance) {
  char buf[160];
  const char* name =
      perfSymbolName(buf, sizeof buf, reinterpret_cast<const void*>(&readFile),
                     0x1234567800000000ULL, "v1");
  ASSERT_EQ(name, buf);
  const std::string s(name);
  EXPECT_EQ(s.rfind("brew::", 0), 0u) << s;
  // Fingerprint prefix (the top 32 bits) and the variant suffix.
  EXPECT_NE(s.find("@12345678"), std::string::npos) << s;
  EXPECT_NE(s.find(".v1"), std::string::npos) << s;
}

TEST(PerfMap, RegisterGeneratedCodeFeedsRegionIndex) {
  // The install hook publishes into the profiler's region index even with
  // both external sinks disabled — crash attribution must never depend on
  // BREW_PERF_MAP/BREW_JITDUMP.
  setPerfMap(false);
  setJitDump(false);
  static const uint8_t blob[40] = {0xc3};
  registerGeneratedCode(blob, sizeof blob,
                        reinterpret_cast<const void*>(&testBlobs),
                        0x0badf00d00000000ULL, "hook");
  prof::CodeRegion region;
  ASSERT_TRUE(
      prof::lookupCodeRegion(reinterpret_cast<uint64_t>(blob) + 4, &region));
  EXPECT_EQ(region.fingerprint, 0x0badf00d00000000ULL);
  EXPECT_NE(std::string(region.name).find("@0badf00d"), std::string::npos);
  prof::unregisterCodeRegion(blob, sizeof blob);
}

}  // namespace
}  // namespace brew
