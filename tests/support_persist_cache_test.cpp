// Persistent-cache battery (docs/CACHE.md "Persistence"): warm-start
// round trips through a fresh SpecManager, the corruption battery
// (truncation, bit flips, stale format version, foreign build id, a
// kill-during-write torture loop — every case must fall back to a cold
// rewrite, never crash, and bump cache.persist_rejects), plus the
// in-process page-sharing path (server Store + client Store over the
// sealed-memfd socket) hammered from 8 threads for the TSan sweep.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/code_cache.hpp"
#include "core/rewriter.hpp"
#include "core/spec_manager.hpp"
#include "support/persist_cache.hpp"
#include "support/telemetry.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BREW_TEST_TSAN 1
#endif
#endif
#if !defined(BREW_TEST_TSAN) && defined(__SANITIZE_THREAD__)
#define BREW_TEST_TSAN 1
#endif

namespace brew {
namespace {

__attribute__((noinline)) int addmul(int a, int b) { return a * 7 + b; }
typedef int (*addmul_t)(int, int);

Config knownFirstParam() {
  Config config;
  config.setParamKnown(0);
  config.setReturnKind(ReturnKind::Int);
  return config;
}

std::vector<ArgValue> argsFor(int known) {
  return {ArgValue::fromInt(static_cast<uint64_t>(known)),
          ArgValue::fromInt(0)};
}

// Fresh cache directory per test; removed best-effort at scope exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/brew-persist-test-XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    if (!path.empty()) {
      const std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
  std::string path;
};

SpecManager::Options persistOptions(const std::string& dir) {
  SpecManager::Options options;
  options.cacheDir = dir;
  return options;
}

uint64_t counterValue(telemetry::CounterId id) {
  return telemetry::counter(id).value();
}

// On-disk EntryHeader byte offsets the corruption tests patch. Kept in
// sync with persist_cache.cpp by the layout static_asserts there; a drift
// shows up as "stale version" entries failing differently, which the
// battery would catch as a wrong reject reason.
constexpr size_t kHeaderBytes = 104;
constexpr size_t kExeBuildIdOffset = 8;
constexpr size_t kHeaderChecksumOffset = 56;
constexpr size_t kVersionOffset = 64;

std::vector<uint8_t> readFile(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  uint8_t buf[4096];
  for (size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

void writeFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

// Recomputes the header checksum (FNV-1a over the header with the
// checksum field zeroed) so a test can patch header fields and present an
// entry that is *internally consistent* but semantically wrong — the
// stale-version and foreign-build cases must be rejected by the version /
// key comparison, not bounce off the checksum.
void fixHeaderChecksum(std::vector<uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), kHeaderBytes);
  std::vector<uint8_t> hdr(bytes.begin(), bytes.begin() + kHeaderBytes);
  std::memset(hdr.data() + kHeaderChecksumOffset, 0, 8);
  uint64_t h = 1469598103934665603ULL;
  for (const uint8_t b : hdr) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  std::memcpy(bytes.data() + kHeaderChecksumOffset, &h, 8);
}

// Seeds `dir` with one specialization of addmul (known a = `known`) and
// returns the entry's path.
std::string seedEntry(const std::string& dir, int known) {
  SpecManager manager{persistOptions(dir)};
  const Config config = knownFirstParam();
  const auto args = argsFor(known);
  auto result = manager.rewrite(config, {}, reinterpret_cast<void*>(&addmul),
                                args);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(manager.cache().stats().persistWrites, 1u);
  const CacheKey key = makeCacheKey(config, {},
                                    reinterpret_cast<void*>(&addmul), args);
  EXPECT_NE(manager.persistStore(), nullptr);
  return manager.persistStore()->entryPathFor(
      reinterpret_cast<void*>(&addmul), key.configFp, key.argsHash);
}

// After the entry at `dir` was corrupted: a fresh manager must rewrite
// cold (correct results), count exactly one reject, and never crash.
void expectColdFallback(const std::string& dir, int known) {
  const uint64_t rejectsBefore = counterValue(
      telemetry::CounterId::PersistRejects);
  SpecManager manager{persistOptions(dir)};
  auto result = manager.rewrite(knownFirstParam(), {},
                                reinterpret_cast<void*>(&addmul),
                                argsFor(known));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(reinterpret_cast<addmul_t>(result->entry())(known, 9),
            known * 7 + 9);
  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.persistHits, 0u);
  EXPECT_EQ(stats.persistRejects, 1u);
  EXPECT_EQ(counterValue(telemetry::CounterId::PersistRejects),
            rejectsBefore + 1);
  // The reject fell back to a cold rewrite, which re-published the entry.
  EXPECT_EQ(stats.persistWrites, 1u);
}

TEST(PersistStore, SelfBuildIdStable) {
  EXPECT_NE(persist::selfBuildId(), 0u);
  EXPECT_EQ(persist::selfBuildId(), persist::selfBuildId());
}

TEST(PersistStore, OpenRejectsUnwritableDirectory) {
  EXPECT_EQ(persist::Store::open("/proc/none/such/dir"), nullptr);
  EXPECT_EQ(persist::Store::open(""), nullptr);
}

TEST(ConfigAslr, StableFingerprintClassification) {
  EXPECT_TRUE(knownFirstParam().aslrStableFingerprint());
  Config region = knownFirstParam();
  static const int data[4] = {1, 2, 3, 4};
  region.addKnownRegion(data, sizeof data);
  EXPECT_FALSE(region.aslrStableFingerprint());
  Config perFn = knownFirstParam();
  perFn.setFunctionOptions(reinterpret_cast<void*>(&addmul), {});
  EXPECT_FALSE(perFn.aslrStableFingerprint());
  Config handler = knownFirstParam();
  handler.injection().onEntry = [](uint64_t) {};
  EXPECT_FALSE(handler.aslrStableFingerprint());
}

TEST(PersistRoundTrip, WarmStartHitsWithZeroTracePhases) {
  TempDir dir;
  const std::string entry = seedEntry(dir.path, 5);
  struct stat st{};
  ASSERT_EQ(::stat(entry.c_str(), &st), 0);
  EXPECT_GT(st.st_size, 104);

  // A "restarted process": a fresh manager over the same directory. The
  // rewrite must come back from disk — no trace, no emulate, no emit.
  const uint64_t attemptsBefore = counterValue(
      telemetry::CounterId::RewriteAttempts);
  SpecManager manager{persistOptions(dir.path)};
  auto result = manager.rewrite(knownFirstParam(), {},
                                reinterpret_cast<void*>(&addmul),
                                argsFor(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(reinterpret_cast<addmul_t>(result->entry())(5, 9), 44);
  EXPECT_EQ(reinterpret_cast<addmul_t>(result->entry())(5, -3), 32);
  EXPECT_EQ(counterValue(telemetry::CounterId::RewriteAttempts),
            attemptsBefore);  // compileSpecialization never entered
  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.persistHits, 1u);
  EXPECT_EQ(stats.persistRejects, 0u);
  EXPECT_EQ(stats.persistWrites, 0u);
  // Cache accounting still sees the unit's blocks/bytes.
  EXPECT_GT(stats.blocksLive, 0u);
  EXPECT_GT(stats.codeBytes, 0u);

  size_t lines = 0;
  EXPECT_TRUE(manager.persistStore()->manifestIntact(&lines));
  EXPECT_EQ(lines, 1u);
}

TEST(PersistRoundTrip, DifferentSpecializationMisses) {
  TempDir dir;
  seedEntry(dir.path, 5);
  SpecManager manager{persistOptions(dir.path)};
  // Same function, different known value: different argsHash, clean miss.
  auto result = manager.rewrite(knownFirstParam(), {},
                                reinterpret_cast<void*>(&addmul),
                                argsFor(6));
  ASSERT_TRUE(result.ok());
  const CacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.persistHits, 0u);
  EXPECT_EQ(stats.persistMisses, 1u);
  EXPECT_EQ(stats.persistRejects, 0u);
}

TEST(PersistCorruption, TruncatedEntriesReject) {
  // Every truncation point: inside the header, header-only, inside the
  // payload. All must reject, unlink the corpse, and rewrite cold.
  for (const size_t keep : {size_t{3}, kHeaderBytes, kHeaderBytes + 7}) {
    TempDir dir;
    const std::string entry = seedEntry(dir.path, 5);
    ASSERT_EQ(::truncate(entry.c_str(), static_cast<off_t>(keep)), 0);
    expectColdFallback(dir.path, 5);
  }
}

TEST(PersistCorruption, PayloadBitFlipRejects) {
  TempDir dir;
  const std::string entry = seedEntry(dir.path, 5);
  std::vector<uint8_t> bytes = readFile(entry);
  ASSERT_GT(bytes.size(), kHeaderBytes + 5);
  bytes[kHeaderBytes + 5] ^= 0x40;
  writeFile(entry, bytes);
  expectColdFallback(dir.path, 5);
}

TEST(PersistCorruption, HeaderBitFlipRejects) {
  TempDir dir;
  const std::string entry = seedEntry(dir.path, 5);
  std::vector<uint8_t> bytes = readFile(entry);
  ASSERT_GT(bytes.size(), kHeaderBytes);
  bytes[kVersionOffset + 8] ^= 0x01;  // flags field; header checksum trips
  writeFile(entry, bytes);
  expectColdFallback(dir.path, 5);
}

TEST(PersistCorruption, StaleFormatVersionRejects) {
  TempDir dir;
  const std::string entry = seedEntry(dir.path, 5);
  std::vector<uint8_t> bytes = readFile(entry);
  ASSERT_GT(bytes.size(), kHeaderBytes);
  const uint32_t stale = persist::kFormatVersion + 1;
  std::memcpy(bytes.data() + kVersionOffset, &stale, 4);
  fixHeaderChecksum(bytes);  // internally consistent, wrong version
  writeFile(entry, bytes);
  expectColdFallback(dir.path, 5);
}

TEST(PersistCorruption, ForeignBuildIdRejects) {
  TempDir dir;
  const std::string entry = seedEntry(dir.path, 5);
  std::vector<uint8_t> bytes = readFile(entry);
  ASSERT_GT(bytes.size(), kHeaderBytes);
  uint64_t foreign = persist::selfBuildId() ^ 0xdeadbeefULL;
  std::memcpy(bytes.data() + kExeBuildIdOffset, &foreign, 8);
  fixHeaderChecksum(bytes);  // consistent entry from a "rebuilt binary"
  writeFile(entry, bytes);
  expectColdFallback(dir.path, 5);
}

TEST(PersistCorruption, KillDuringWriteTortureLoop) {
#ifdef BREW_TEST_TSAN
  GTEST_SKIP() << "fork-without-exec torture loop is not TSan-compatible";
#else
  TempDir dir;
  std::vector<uint8_t> payload(1536);
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<uint8_t>(i * 131 + 7);

  for (int round = 0; round < 6; ++round) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: hammer writes until the parent kills us mid-stream.
      auto store = persist::Store::open(dir.path);
      if (store == nullptr) ::_exit(1);
      persist::WriteRequest req;
      req.fn = reinterpret_cast<void*>(&addmul);
      req.configFp = 0x1234;
      req.bytes = payload.data();
      req.size = payload.size();
      req.codeBytes = static_cast<uint32_t>(payload.size());
      req.blockUnits = 1;
      for (uint64_t k = 0;; ++k) {
        req.argsHash = k % 16;
        store->write(req);
      }
    }
    ::usleep(static_cast<useconds_t>(500 + round * 700));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
  }

  // Survivor's view: open() sweeps the dead writers' temp files, the
  // manifest has no torn lines, and every key either loads a fully valid
  // entry or misses — never crashes, never yields partial bytes.
  auto store = persist::Store::open(dir.path);
  ASSERT_NE(store, nullptr);
  size_t lines = 0;
  EXPECT_TRUE(store->manifestIntact(&lines));
  const uint64_t rejectsBefore = counterValue(
      telemetry::CounterId::PersistRejects);
  size_t hits = 0;
  for (uint64_t k = 0; k < 16; ++k) {
    persist::ProbeResult probe =
        store->probe(reinterpret_cast<void*>(&addmul), 0x1234, k);
    EXPECT_FALSE(probe.rejected);
    if (!probe.entry.has_value()) continue;
    ++hits;
    ASSERT_TRUE(probe.entry->memory.valid());
    EXPECT_EQ(std::memcmp(probe.entry->memory.data(), payload.data(),
                          payload.size()),
              0);
  }
  EXPECT_GT(hits, 0u);  // the loop published entries before dying
  EXPECT_GE(lines, hits);
  EXPECT_EQ(counterValue(telemetry::CounterId::PersistRejects),
            rejectsBefore);

  // No orphaned temp files survive the sweep.
  const std::string cmd =
      "ls -A '" + store->directory() + "' | grep -c '^\\.tmp-' || true";
  std::FILE* p = ::popen(cmd.c_str(), "r");
  ASSERT_NE(p, nullptr);
  char buf[32] = {0};
  ASSERT_NE(std::fgets(buf, sizeof buf, p), nullptr);
  ::pclose(p);
  EXPECT_EQ(std::strtol(buf, nullptr, 10), 0);
#endif
}

TEST(PersistConcurrency, SharedPagesServedBetweenStores) {
  TempDir dir;
  auto server = persist::Store::open(dir.path);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->servingPages());

  std::vector<uint8_t> payload(640);
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<uint8_t>(i ^ 0xa5);
  persist::WriteRequest req;
  req.fn = reinterpret_cast<void*>(&addmul);
  req.configFp = 7;
  req.argsHash = 9;
  req.bytes = payload.data();
  req.size = payload.size();
  req.codeBytes = static_cast<uint32_t>(payload.size());
  req.blockUnits = 1;
  ASSERT_TRUE(server->write(req));

  // Second store in the same directory: the socket is taken, so it comes
  // up as a client and its reloc-free probes map the server's sealed memfd.
  auto client = persist::Store::open(dir.path);
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(client->servingPages());
  persist::ProbeResult probe =
      client->probe(reinterpret_cast<void*>(&addmul), 7, 9);
  ASSERT_TRUE(probe.entry.has_value());
  EXPECT_TRUE(probe.entry->shared);
  EXPECT_EQ(std::memcmp(probe.entry->memory.data(), payload.data(),
                        payload.size()),
            0);
  // Sealed mapping: flipping it back to writable must fail, not succeed.
  EXPECT_FALSE(probe.entry->memory.makeWritable().ok());
}

TEST(PersistConcurrency, EightThreadHammerOverOneDirectory) {
  TempDir dir;
  auto server = persist::Store::open(dir.path);
  ASSERT_NE(server, nullptr);
  auto client = persist::Store::open(dir.path);
  ASSERT_NE(client, nullptr);

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint8_t> payload(256 + static_cast<size_t>(t) * 32);
      for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<uint8_t>(i + t);
      persist::Store* mine = (t % 2 == 0) ? server.get() : client.get();
      for (int i = 0; i < kIters; ++i) {
        persist::WriteRequest req;
        req.fn = reinterpret_cast<void*>(&addmul);
        req.configFp = 0x42;
        req.argsHash = static_cast<uint64_t>(t);
        req.bytes = payload.data();
        req.size = payload.size();
        req.codeBytes = static_cast<uint32_t>(payload.size());
        req.blockUnits = 1;
        if (!mine->write(req)) failures.fetch_add(1);
        persist::ProbeResult probe = mine->probe(
            reinterpret_cast<void*>(&addmul), 0x42,
            static_cast<uint64_t>(t));
        if (!probe.entry.has_value() || probe.rejected ||
            std::memcmp(probe.entry->memory.data(), payload.data(),
                        payload.size()) != 0)
          failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  size_t lines = 0;
  EXPECT_TRUE(server->manifestIntact(&lines));
  EXPECT_EQ(lines, static_cast<size_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace brew
