// Cross-process persistent-cache integration (docs/CACHE.md
// "Persistence"): forked sibling processes share one cache directory.
// Phase 1 races 8 cold workers writing into an empty directory; phase 2
// restarts 8 warm workers that must load everything from disk with ZERO
// trace phases (persist hits == kernels, no compileSpecialization, no
// traced instructions) and byte-identical code. A separate test pins the
// sealed-memfd page-sharing path: a child of a page-serving parent must
// map its code as shared RX pages backed by "memfd:brew-persist".
//
// Forked children never run gtest machinery: they report through per-child
// result files written with plain write() and leave via _exit(), so a
// child failure surfaces as a parent assertion, not a hung or double
// reporting test. Fork-without-exec is not TSan-compatible (the child
// inherits a locked runtime), so these tests skip under TSan; the
// in-process thread hammer in support_persist_cache_test.cpp carries the
// TSan coverage for the same code paths.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/rewriter.hpp"
#include "core/spec_manager.hpp"
#include "support/persist_cache.hpp"
#include "support/telemetry.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BREW_TEST_TSAN 1
#endif
#endif
#if !defined(BREW_TEST_TSAN) && defined(__SANITIZE_THREAD__)
#define BREW_TEST_TSAN 1
#endif

namespace brew {
namespace {

// Distinct kernels so each worker materializes several independent cache
// entries; noinline + asm marker keep them apart as trace subjects.
__attribute__((noinline)) int kernAdd(int a, int b) {
  asm volatile("");
  return a * 7 + b;
}
__attribute__((noinline)) int kernXor(int a, int b) {
  asm volatile("");
  return (a ^ 0x15) * 3 + b;
}
__attribute__((noinline)) int kernShift(int a, int b) {
  asm volatile("");
  return (a << 2) - b + 11;
}
typedef int (*kern_t)(int, int);

struct Kernel {
  kern_t fn;
  int known;
  int probe;  // second argument used when executing
};

const Kernel kKernels[] = {
    {&kernAdd, 5, 9},
    {&kernXor, 12, -4},
    {&kernShift, 3, 20},
};
constexpr size_t kKernelCount = sizeof(kKernels) / sizeof(kKernels[0]);

Config knownFirstParam() {
  Config config;
  config.setParamKnown(0);
  config.setReturnKind(ReturnKind::Int);
  return config;
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/brew-persist-proc-XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    if (!path.empty()) {
      const std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
  std::string path;
};

uint64_t fnv(const void* data, size_t n, uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// What one worker observed, written to its result file before _exit().
struct WorkerReport {
  uint64_t magic = 0x574b5250;  // "WRKP": file fully written
  uint64_t persistHits = 0;
  uint64_t persistWrites = 0;
  uint64_t persistRejects = 0;
  uint64_t rewriteAttempts = 0;   // telemetry delta: trace phases entered
  uint64_t traceInstructions = 0; // telemetry delta: instructions emulated
  uint64_t codeDigest = 0;        // fnv over every unit's finalized bytes
  uint64_t execChecksum = 0;      // results of running the rewritten code
  uint64_t sharedMaps = 0;
};

// Child body: open a SpecManager over `dir`, rewrite + execute every
// kernel, report what happened. Never returns.
[[noreturn]] void runWorker(const std::string& dir,
                            const std::string& reportPath) {
  WorkerReport report;
  const uint64_t attempts0 =
      telemetry::counter(telemetry::CounterId::RewriteAttempts).value();
  const uint64_t traced0 =
      telemetry::counter(telemetry::CounterId::TraceInstructions).value();
  {
    SpecManager::Options options;
    options.cacheDir = dir;
    SpecManager manager{options};
    const Config config = knownFirstParam();
    for (const Kernel& k : kKernels) {
      std::vector<ArgValue> args = {
          ArgValue::fromInt(static_cast<uint64_t>(k.known)),
          ArgValue::fromInt(0)};
      auto result = manager.rewrite(config, {},
                                    reinterpret_cast<void*>(k.fn), args);
      if (!result.ok()) ::_exit(2);
      report.codeDigest = fnv(result->entry(), result->codeSize(),
                              report.codeDigest ? report.codeDigest
                                                : 1469598103934665603ULL);
      const int got = reinterpret_cast<kern_t>(result->entry())(k.known,
                                                                k.probe);
      if (got != k.fn(k.known, k.probe)) ::_exit(3);
      report.execChecksum =
          report.execChecksum * 31 + static_cast<uint64_t>(got);
    }
    const CacheStats stats = manager.cache().stats();
    report.persistHits = stats.persistHits;
    report.persistWrites = stats.persistWrites;
    report.persistRejects = stats.persistRejects;
  }
  report.rewriteAttempts =
      telemetry::counter(telemetry::CounterId::RewriteAttempts).value() -
      attempts0;
  report.traceInstructions =
      telemetry::counter(telemetry::CounterId::TraceInstructions).value() -
      traced0;
  report.sharedMaps =
      telemetry::counter(telemetry::CounterId::PersistSharedMaps).value();

  const int fd = ::open(reportPath.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) ::_exit(4);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&report);
  size_t left = sizeof report;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) ::_exit(5);
    p += n;
    left -= static_cast<size_t>(n);
  }
  ::close(fd);
  ::_exit(0);  // skip atexit/dtors: the report file is the contract
}

bool readReport(const std::string& path, WorkerReport* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  const size_t n = std::fread(out, 1, sizeof *out, f);
  std::fclose(f);
  return n == sizeof *out && out->magic == 0x574b5250;
}

// Forks `count` workers over `dir` and collects their reports.
std::vector<WorkerReport> runWorkers(const std::string& dir, int count,
                                     const std::string& tag) {
  std::vector<pid_t> pids;
  std::vector<std::string> paths;
  for (int i = 0; i < count; ++i) {
    paths.push_back(dir + "/report-" + tag + "-" + std::to_string(i));
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) runWorker(dir, paths.back());
    pids.push_back(pid);
  }
  std::vector<WorkerReport> reports;
  for (int i = 0; i < count; ++i) {
    int status = 0;
    EXPECT_EQ(::waitpid(pids[i], &status, 0), pids[i]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << tag << " worker " << i << " status " << status;
    WorkerReport report;
    EXPECT_TRUE(readReport(paths[i], &report)) << paths[i];
    reports.push_back(report);
  }
  return reports;
}

TEST(PersistProcess, ColdRaceThenWarmRestartZeroTracePhases) {
#ifdef BREW_TEST_TSAN
  GTEST_SKIP() << "fork-without-exec workers are not TSan-compatible";
#else
  TempDir dir;
  constexpr int kWorkers = 8;

  // Phase 1: 8 cold workers race writes into one empty directory. Every
  // worker must finish correctly; the manifest must survive the race.
  const auto cold = runWorkers(dir.path, kWorkers, "cold");
  ASSERT_EQ(cold.size(), static_cast<size_t>(kWorkers));
  uint64_t coldAttempts = 0;
  uint64_t coldWrites = 0;
  for (const WorkerReport& r : cold) {
    EXPECT_EQ(r.persistRejects, 0u);
    EXPECT_EQ(r.codeDigest, cold[0].codeDigest);  // same layout → same code
    EXPECT_EQ(r.execChecksum, cold[0].execChecksum);
    coldAttempts += r.rewriteAttempts;
    coldWrites += r.persistWrites;
  }
  // Someone traced and published every kernel; a worker that lost the race
  // legitimately warm-starts off a faster sibling's entries, so the trace
  // floor is aggregate, not per-worker.
  EXPECT_GT(coldAttempts, 0u);
  EXPECT_GE(coldWrites, kKernelCount);

  // Phase 2: 8 warm workers over the now-populated directory. Zero trace
  // phases: every rewrite is served from disk.
  const auto warm = runWorkers(dir.path, kWorkers, "warm");
  for (const WorkerReport& r : warm) {
    EXPECT_EQ(r.persistHits, kKernelCount);
    EXPECT_EQ(r.persistWrites, 0u);
    EXPECT_EQ(r.persistRejects, 0u);
    EXPECT_EQ(r.rewriteAttempts, 0u);      // no compileSpecialization
    EXPECT_EQ(r.traceInstructions, 0u);    // no emulation either
    EXPECT_EQ(r.codeDigest, cold[0].codeDigest);  // byte-identical code
    EXPECT_EQ(r.execChecksum, cold[0].execChecksum);
  }

  // The racing writers never tore the manifest.
  auto store = persist::Store::open(dir.path);
  ASSERT_NE(store, nullptr);
  size_t lines = 0;
  EXPECT_TRUE(store->manifestIntact(&lines));
  EXPECT_GE(lines, kKernelCount);  // every entry was published at least once
#endif
}

TEST(PersistProcess, ChildMapsSharedPagesFromParentServer) {
#ifdef BREW_TEST_TSAN
  GTEST_SKIP() << "fork-without-exec workers are not TSan-compatible";
#else
  TempDir dir;
  // Parent seeds the directory and stays alive as the page server.
  SpecManager::Options options;
  options.cacheDir = dir.path;
  SpecManager parent{options};
  const Config config = knownFirstParam();
  for (const Kernel& k : kKernels) {
    std::vector<ArgValue> args = {
        ArgValue::fromInt(static_cast<uint64_t>(k.known)),
        ArgValue::fromInt(0)};
    ASSERT_TRUE(parent.rewrite(config, {},
                               reinterpret_cast<void*>(k.fn), args)
                    .ok());
  }
  ASSERT_NE(parent.persistStore(), nullptr);
  if (!parent.persistStore()->servingPages())
    GTEST_SKIP() << "page server unavailable (no memfd sealing?)";

  const std::string reportPath = dir.path + "/report-shared";
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: every kernel has no relocations (pure arithmetic), so each
    // warm load should arrive as a shared sealed-memfd mapping. Verify the
    // mapping really is memfd-backed before reporting.
    runWorker(dir.path, reportPath);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "shared-map child status " << status;
  WorkerReport report;
  ASSERT_TRUE(readReport(reportPath, &report));
  EXPECT_EQ(report.persistHits, kKernelCount);
  EXPECT_EQ(report.rewriteAttempts, 0u);
  // At least one unit came over the socket as shared pages. (All of them
  // should, but a reloc-bearing build keeps correctness with a private
  // mapping — sharedMaps > 0 is the contract.)
  EXPECT_GT(report.sharedMaps, 0u);
#endif
}

}  // namespace
}  // namespace brew
