// Sampling profiler + code-region index (support/profiler.hpp): region
// CRUD and seqlock lookup, deterministic sample attribution through the
// injection hook, the real SIGPROF path, concurrent register/inject/drain
// hammering (runs under the concurrency label and the TSan sweep), and the
// JSON exporter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "jit/assembler.hpp"
#include "support/profiler.hpp"

namespace brew {
namespace {

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string tmpPath(const char* name) {
  return std::string(::getenv("TMPDIR") != nullptr ? ::getenv("TMPDIR")
                                                   : "/tmp") +
         "/" + name + "." + std::to_string(::getpid());
}

TEST(CodeRegionIndex, RegisterLookupUnregister) {
  alignas(16) static const uint8_t blob[64] = {0xc3};
  const auto base = reinterpret_cast<uint64_t>(blob);
  const size_t before = prof::codeRegionCount();

  prof::registerCodeRegion(blob, sizeof blob, "test_region_a", 0xabcdefULL);
  EXPECT_EQ(prof::codeRegionCount(), before + 1);

  prof::CodeRegion region;
  ASSERT_TRUE(prof::lookupCodeRegion(base, &region));
  EXPECT_EQ(region.base, base);
  EXPECT_EQ(region.size, sizeof blob);
  EXPECT_EQ(region.fingerprint, 0xabcdefULL);
  EXPECT_STREQ(region.name, "test_region_a");

  // Interior and last-byte PCs resolve; one-past-the-end does not.
  EXPECT_TRUE(prof::lookupCodeRegion(base + 32, &region));
  EXPECT_TRUE(prof::lookupCodeRegion(base + sizeof blob - 1, &region));
  EXPECT_FALSE(prof::lookupCodeRegion(base + sizeof blob, &region));

  // Re-registering the same base updates in place, not a second slot.
  prof::registerCodeRegion(blob, 32, "test_region_a2", 0x1234ULL);
  EXPECT_EQ(prof::codeRegionCount(), before + 1);
  ASSERT_TRUE(prof::lookupCodeRegion(base + 8, &region));
  EXPECT_STREQ(region.name, "test_region_a2");
  EXPECT_EQ(region.size, 32u);

  prof::unregisterCodeRegion(blob, 32);
  EXPECT_EQ(prof::codeRegionCount(), before);
  EXPECT_FALSE(prof::lookupCodeRegion(base, &region));
}

TEST(CodeRegionIndex, LookupMissesForeignPc) {
  prof::CodeRegion region;
  EXPECT_FALSE(prof::lookupCodeRegion(0, &region));
  // The stack is never a registered region.
  int local = 0;
  EXPECT_FALSE(
      prof::lookupCodeRegion(reinterpret_cast<uint64_t>(&local), &region));
}

TEST(Profiler, InjectedSamplesAttributeToRegion) {
  alignas(16) static const uint8_t hot[128] = {0xc3};
  alignas(16) static const uint8_t cold[128] = {0xc3};
  prof::registerCodeRegion(hot, sizeof hot, "inject_hot", 1);
  prof::registerCodeRegion(cold, sizeof cold, "inject_cold", 2);

  const auto hotPc = reinterpret_cast<uint64_t>(hot) + 4;
  const auto coldPc = reinterpret_cast<uint64_t>(cold) + 4;
  for (int i = 0; i < 10; ++i) prof::injectSampleForTest(hotPc);
  for (int i = 0; i < 3; ++i) prof::injectSampleForTest(coldPc);
  prof::injectSampleForTest(reinterpret_cast<uint64_t>(&readFile));  // alien

  prof::drainSamplesNow();
  const prof::ProfileSnapshot snap = prof::profileSnapshot();
  EXPECT_GE(snap.totalSamples, 14u);
  EXPECT_GE(snap.brewSamples, 13u);

  uint64_t hotSamples = 0, coldSamples = 0;
  for (const auto& e : snap.entries) {
    if (e.name == "inject_hot") hotSamples = e.samples;
    if (e.name == "inject_cold") coldSamples = e.samples;
  }
  EXPECT_GE(hotSamples, 10u);
  EXPECT_GE(coldSamples, 3u);

  // Entries are sorted by samples, descending.
  for (size_t i = 1; i < snap.entries.size(); ++i)
    EXPECT_GE(snap.entries[i - 1].samples, snap.entries[i].samples);

  prof::unregisterCodeRegion(hot, sizeof hot);
  prof::unregisterCodeRegion(cold, sizeof cold);
}

TEST(Profiler, RealSigprofTicksLand) {
  if (!prof::startProfiler(997)) GTEST_SKIP() << "cannot arm ITIMER_PROF";
  EXPECT_TRUE(prof::profilerRunning());
  const uint64_t before = prof::profileSnapshot().totalSamples;

  // Burn CPU long enough for several ticks at ~1ms period. ITIMER_PROF
  // counts process CPU time, so a busy loop is the right load.
  volatile uint64_t sink = 0;
  for (int spin = 0; spin < 200; ++spin) {
    for (uint64_t i = 0; i < 400000; ++i) sink = sink + i * 2654435761u;
    if (prof::profileSnapshot().totalSamples > before) break;
  }

  prof::stopProfiler();
  EXPECT_FALSE(prof::profilerRunning());
  const prof::ProfileSnapshot snap = prof::profileSnapshot();
  EXPECT_GT(snap.totalSamples, before)
      << "no SIGPROF tick despite sustained CPU burn";
}

TEST(Profiler, StartIsIdempotentAndRestartable) {
  if (!prof::startProfiler(101)) GTEST_SKIP() << "cannot arm ITIMER_PROF";
  EXPECT_TRUE(prof::startProfiler(101));  // already running: true, no rearm
  prof::stopProfiler();
  prof::stopProfiler();  // stop when stopped is a no-op
  if (!prof::startProfiler(211)) GTEST_SKIP() << "cannot re-arm ITIMER_PROF";
  EXPECT_TRUE(prof::profilerRunning());
  prof::stopProfiler();
}

TEST(Profiler, WriteJsonShape) {
  alignas(16) static const uint8_t blob[32] = {0xc3};
  prof::registerCodeRegion(blob, sizeof blob, "json_region", 7);
  for (int i = 0; i < 5; ++i)
    prof::injectSampleForTest(reinterpret_cast<uint64_t>(blob) + 1);
  prof::drainSamplesNow();

  const std::string path = tmpPath("brew_profile_test");
  ASSERT_TRUE(prof::writeProfileJson(path.c_str()));
  const std::string json = readFile(path);
  EXPECT_NE(json.find("\"hz\""), std::string::npos);
  EXPECT_NE(json.find("\"total_samples\""), std::string::npos);
  EXPECT_NE(json.find("\"brew_samples\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_samples\""), std::string::npos);
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
  EXPECT_NE(json.find("json_region"), std::string::npos);
  // tmp+rename export: no leftover temporary.
  EXPECT_EQ(readFile(path + ".tmp"), "");
  std::remove(path.c_str());
  prof::unregisterCodeRegion(blob, sizeof blob);
}

// 8 threads hammer the sample path while regions churn and a drainer runs:
// the TSan build of this test is the no-locks-in-the-ring proof.
TEST(Profiler, ConcurrentInjectRegisterDrainHammer) {
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  alignas(16) static uint8_t arena[kThreads][64];

  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &go] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      char name[32];
      std::snprintf(name, sizeof name, "hammer_%d", t);
      const auto pc = reinterpret_cast<uint64_t>(&arena[t][8]);
      for (int i = 0; i < kIters; ++i) {
        if ((i & 255) == 0)
          prof::registerCodeRegion(arena[t], sizeof arena[t], name,
                                   static_cast<uint64_t>(t));
        prof::injectSampleForTest(pc);
        if ((i & 1023) == 1023) prof::drainSamplesNow();
      }
    });
  }
  std::atomic<bool> stop{false};
  pool.emplace_back([&go, &stop] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!stop.load(std::memory_order_acquire)) {
      prof::drainSamplesNow();
      prof::CodeRegion region;
      prof::lookupCodeRegion(reinterpret_cast<uint64_t>(&arena[3][8]),
                             &region);
      std::this_thread::yield();
    }
  });
  go.store(true, std::memory_order_release);
  for (int t = 0; t < kThreads; ++t) pool[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  pool.back().join();
  prof::drainSamplesNow();

  const prof::ProfileSnapshot snap = prof::profileSnapshot();
  uint64_t hammered = 0;
  for (const auto& e : snap.entries)
    if (e.name.rfind("hammer_", 0) == 0) hammered += e.samples;
  // Every injected sample is either attributed or counted as dropped
  // (rings are finite and drains race the injectors).
  EXPECT_GT(hammered, 0u);
  EXPECT_LE(hammered, static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    prof::unregisterCodeRegion(arena[t], sizeof arena[t]);
}

}  // namespace
}  // namespace brew
