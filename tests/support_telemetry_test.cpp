// Telemetry registry and phase-tracing tests: instrument correctness,
// multi-threaded increments, trace-event JSON export (well-formed, spans
// nest), the metrics JSON exporter, and the brew_telemetry_* C API view.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/brew.h"
#include "core/rewriter.hpp"
#include "jit/assembler.hpp"
#include "support/telemetry.hpp"

namespace brew::telemetry {
namespace {

std::string slurp(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Locates the span named `name` in a trace dump and returns [ts, ts+dur)
// in microseconds (the writer emits name before ts/dur).
bool findSpan(const std::string& json, const char* name, double* begin,
              double* end) {
  const std::string needle = std::string("\"name\":\"") + name + "\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  double ts = 0, dur = 0;
  if (std::sscanf(json.c_str() + at + needle.size(),
                  ",\"ph\":\"X\",\"ts\":%lf,\"dur\":%lf", &ts, &dur) != 2)
    return false;
  *begin = ts;
  *end = ts + dur;
  return true;
}

TEST(TelemetryCounter, AddAndReset) {
  Counter& c = counter(CounterId::RewriteAttempts);
  const uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  EXPECT_STREQ(counterName(CounterId::RewriteAttempts), "rewrite.attempts");
}

TEST(TelemetryGauge, UpAndDown) {
  Gauge& g = gauge(GaugeId::CacheBytesLive);
  const int64_t before = g.value();
  g.add(4096);
  g.sub(96);
  EXPECT_EQ(g.value(), before + 4000);
  g.sub(4000);
  EXPECT_EQ(g.value(), before);
}

TEST(TelemetryHistogram, BucketBoundaries) {
  // Two-level HDR layout: bucket 0 holds zeros, then 16 linear sub-buckets
  // per power-of-two major. Values below 2^kMinorBits get single-value
  // buckets; above that, each bucket spans ~1/16 of its octave.
  EXPECT_EQ(Histogram::bucketFor(0), 0);
  EXPECT_EQ(Histogram::bucketFor(1), 1);
  EXPECT_EQ(Histogram::bucketFor(2), 17);   // major 2, minor 0
  EXPECT_EQ(Histogram::bucketFor(3), 18);   // major 2, minor 1
  EXPECT_EQ(Histogram::bucketFor(4), 33);   // major 3, minor 0
  EXPECT_EQ(Histogram::bucketFor(1023), 160);
  EXPECT_EQ(Histogram::bucketFor(1024), 161);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), Histogram::kBuckets - 1);

  // bucketLowerBound inverts bucketFor on every bucket edge.
  for (const uint64_t v : {uint64_t{1}, uint64_t{2}, uint64_t{15},
                           uint64_t{16}, uint64_t{1000}, uint64_t{1 << 20},
                           uint64_t{0x123456789abcULL}}) {
    const int b = Histogram::bucketFor(v);
    EXPECT_LE(Histogram::bucketLowerBound(b), v) << v;
    EXPECT_GT(Histogram::bucketLowerBound(b) + Histogram::bucketWidth(b), v)
        << v;
  }
}

TEST(TelemetryHistogram, QuantilesWithinBucketResolution) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // Sub-buckets are ~1/16 of an octave wide and the estimate returns the
  // bucket midpoint, so ~8% relative error bounds the answer.
  const auto near = [](uint64_t got, uint64_t want) {
    const double rel =
        (static_cast<double>(got) - static_cast<double>(want)) /
        static_cast<double>(want);
    return rel > -0.08 && rel < 0.08;
  };
  EXPECT_TRUE(near(h.quantile(0.50), 500)) << h.quantile(0.50);
  EXPECT_TRUE(near(h.quantile(0.99), 990)) << h.quantile(0.99);
  EXPECT_TRUE(near(h.quantile(0.999), 999)) << h.quantile(0.999);
  EXPECT_EQ(h.quantile(0.0), 1u);

  // Single-value buckets (values < 2^kMinorBits) are exact.
  Histogram exact;
  for (int i = 0; i < 100; ++i) exact.record(5);
  EXPECT_EQ(exact.quantile(0.5), 5u);
  EXPECT_EQ(exact.quantile(0.999), 5u);

  // Empty histogram: quantile is 0, not a crash.
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);

  // The static form sees the same buckets the C API snapshot copies out.
  uint64_t raw[Histogram::kBuckets];
  for (int i = 0; i < Histogram::kBuckets; ++i) raw[i] = h.bucket(i);
  EXPECT_EQ(Histogram::quantileFromBuckets(raw, 0.50), h.quantile(0.50));
}

TEST(TelemetryHistogram, RecordAggregates) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(100);
  h.record(7);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 108u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucketFor(100)), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// The rewriter splits the trace window into emulate_decode/exec/shadow;
// by construction the three parts sum exactly to the decode+emulate whole
// (same stamps, same clock), per rewrite and therefore over any number of
// rewrites. Histogram sums are exact (only buckets are approximate), so
// the deltas must match to the nanosecond.
TEST(TelemetryPhases, EmulateSplitSumsToWhole) {
  jit::Assembler as;
  as.movRegImm(isa::Reg::rax, 0);
  for (int i = 0; i < 8; ++i)
    as.aluRegReg(isa::Mnemonic::Add, isa::Reg::rax, isa::Reg::rdi);
  as.ret();
  auto fn = as.finalizeExecutable();
  ASSERT_TRUE(fn.ok()) << fn.error().message();

  Histogram& whole0 = histogram(HistogramId::PhaseDecodeNs);
  Histogram& whole1 = histogram(HistogramId::PhaseEmulateNs);
  Histogram& partDecode = histogram(HistogramId::PhaseEmulateDecodeNs);
  Histogram& partExec = histogram(HistogramId::PhaseEmulateExecNs);
  Histogram& partShadow = histogram(HistogramId::PhaseEmulateShadowNs);
  const uint64_t wholeSum = whole0.sum() + whole1.sum();
  const uint64_t partSum = partDecode.sum() + partExec.sum() + partShadow.sum();
  const uint64_t partCount = partDecode.count();

  constexpr int kRewrites = 5;
  for (int i = 0; i < kRewrites; ++i) {
    Rewriter rewriter{Config{}};
    auto rewritten = rewriter.rewrite(fn->data(), 3);
    ASSERT_TRUE(rewritten.ok()) << rewritten.error().message();
    EXPECT_EQ(rewritten->as<int64_t (*)(int64_t)>()(3), 24);
  }

  EXPECT_EQ(partDecode.count() - partCount, uint64_t{kRewrites});
  EXPECT_EQ(partExec.count(), partDecode.count());
  EXPECT_EQ(partShadow.count(), partDecode.count());
  const uint64_t wholeDelta = whole0.sum() + whole1.sum() - wholeSum;
  const uint64_t partDelta =
      partDecode.sum() + partExec.sum() + partShadow.sum() - partSum;
  EXPECT_EQ(partDelta, wholeDelta);
}

TEST(TelemetryRace, EightThreadIncrements) {
  Counter& c = counter(CounterId::TraceInstructions);
  Histogram& h = histogram(HistogramId::TraceQueueDepth);
  const uint64_t cBefore = c.value();
  const uint64_t hBefore = h.count();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<uint64_t>(i));
      }
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value() - cBefore, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.count() - hBefore, uint64_t{kThreads} * kPerThread);
  EXPECT_GE(h.max(), uint64_t{kPerThread - 1});
}

TEST(TelemetrySnapshot, NamesEveryInstrument) {
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counters.size(),
            static_cast<size_t>(CounterId::kCount));
  EXPECT_EQ(snap.gauges.size(), static_cast<size_t>(GaugeId::kCount));
  EXPECT_EQ(snap.histograms.size(),
            static_cast<size_t>(HistogramId::kCount));
  for (const auto& c : snap.counters) EXPECT_NE(c.name, nullptr);
  for (const auto& h : snap.histograms) EXPECT_NE(h.name, nullptr);
}

TEST(TelemetryTrace, SpansNestInExportedJson) {
  clearTrace();
  setTracing(true);
  // A synthetic rewrite-shaped tree with fully controlled timestamps.
  const uint64_t t0 = nowNs();
  recordSpan("tt_decode", t0 + 1000, t0 + 2000);
  recordSpan("tt_emit", t0 + 2000, t0 + 5000);
  recordSpan("tt_rewrite", t0 + 1000, t0 + 6000,
             "\"fn\":\"brew::probe@deadbeef\"");
  setTracing(false);

  char path[] = "/tmp/brew_trace_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeTrace(path));
  const std::string json = slurp(path);
  std::remove(path);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("brew::probe@deadbeef"), std::string::npos);

  double decodeB = 0, decodeE = 0, emitB = 0, emitE = 0, rwB = 0, rwE = 0;
  ASSERT_TRUE(findSpan(json, "tt_decode", &decodeB, &decodeE));
  ASSERT_TRUE(findSpan(json, "tt_emit", &emitB, &emitE));
  ASSERT_TRUE(findSpan(json, "tt_rewrite", &rwB, &rwE));
  // Children fall inside the parent and do not overlap each other.
  EXPECT_GE(decodeB, rwB);
  EXPECT_LE(decodeE, rwE);
  EXPECT_GE(emitB, decodeE);
  EXPECT_LE(emitE, rwE);
  clearTrace();
}

TEST(TelemetryTrace, DisabledRecordsNothing) {
  clearTrace();
  setTracing(false);
  recordSpan("tt_invisible", 100, 200);
  { SpanScope scope("tt_scoped_invisible"); }

  char path[] = "/tmp/brew_trace_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeTrace(path));
  const std::string json = slurp(path);
  std::remove(path);
  EXPECT_EQ(json.find("tt_invisible"), std::string::npos);
}

TEST(TelemetryTrace, SpanScopeRecordsWithArgs) {
  clearTrace();
  setTracing(true);
  {
    SpanScope scope("tt_scope");
    EXPECT_TRUE(scope.active());
    scope.arg("fn", "0x%x", 0xabcd);
    scope.arg("key", "%s", "k1");
  }
  setTracing(false);

  char path[] = "/tmp/brew_trace_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeTrace(path));
  const std::string json = slurp(path);
  std::remove(path);
  EXPECT_NE(json.find("\"tt_scope\""), std::string::npos);
  EXPECT_NE(json.find("\"fn\":\"0xabcd\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"k1\""), std::string::npos);
  clearTrace();
}

TEST(TelemetryJson, ExportsRegistry) {
  counter(CounterId::RewriteAttempts).add();
  char path[] = "/tmp/brew_metrics_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeJson(path));
  const std::string json = slurp(path);
  std::remove(path);
  EXPECT_NE(json.find("\"rewrite.attempts\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"phase.emit_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TelemetryJson, AtomicExportLeavesNoTmp) {
  // Crash-safe exports: both writers stage into "<path>.tmp" and rename,
  // so a reader never sees a torn file and no temporary survives success.
  char path[] = "/tmp/brew_atomic_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeJson(path));
  EXPECT_NE(slurp(path).find("\"counters\""), std::string::npos);
  std::FILE* tmp = std::fopen((std::string(path) + ".tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr) << "writeJson left its staging file";
  if (tmp != nullptr) std::fclose(tmp);

  ASSERT_TRUE(writeTrace(path));
  tmp = std::fopen((std::string(path) + ".tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr) << "writeTrace left its staging file";
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path);

  // An unwritable destination fails cleanly and leaves nothing behind.
  EXPECT_FALSE(writeJson("/nonexistent_dir_brew/metrics.json"));
}

TEST(TelemetryCapi, SnapshotMirrorsRegistry) {
  counter(CounterId::CacheHits).add(3);
  brew_telemetry snap{};
  brew_telemetry_snapshot(&snap);
  EXPECT_EQ(snap.counter_count, static_cast<size_t>(CounterId::kCount));
  bool found = false;
  for (size_t i = 0; i < snap.counter_count; ++i) {
    if (std::strcmp(snap.counters[i].name, "cache.hits") != 0) continue;
    found = true;
    EXPECT_EQ(snap.counters[i].value,
              counter(CounterId::CacheHits).value());
  }
  EXPECT_TRUE(found);
  EXPECT_GE(snap.histogram_count, static_cast<size_t>(HistogramId::kCount));
}

}  // namespace
}  // namespace brew::telemetry
