// Telemetry registry and phase-tracing tests: instrument correctness,
// multi-threaded increments, trace-event JSON export (well-formed, spans
// nest), the metrics JSON exporter, and the brew_telemetry_* C API view.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/brew.h"
#include "support/telemetry.hpp"

namespace brew::telemetry {
namespace {

std::string slurp(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Locates the span named `name` in a trace dump and returns [ts, ts+dur)
// in microseconds (the writer emits name before ts/dur).
bool findSpan(const std::string& json, const char* name, double* begin,
              double* end) {
  const std::string needle = std::string("\"name\":\"") + name + "\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  double ts = 0, dur = 0;
  if (std::sscanf(json.c_str() + at + needle.size(),
                  ",\"ph\":\"X\",\"ts\":%lf,\"dur\":%lf", &ts, &dur) != 2)
    return false;
  *begin = ts;
  *end = ts + dur;
  return true;
}

TEST(TelemetryCounter, AddAndReset) {
  Counter& c = counter(CounterId::RewriteAttempts);
  const uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  EXPECT_STREQ(counterName(CounterId::RewriteAttempts), "rewrite.attempts");
}

TEST(TelemetryGauge, UpAndDown) {
  Gauge& g = gauge(GaugeId::CacheBytesLive);
  const int64_t before = g.value();
  g.add(4096);
  g.sub(96);
  EXPECT_EQ(g.value(), before + 4000);
  g.sub(4000);
  EXPECT_EQ(g.value(), before);
}

TEST(TelemetryHistogram, BucketBoundaries) {
  // Bucket 0 holds zeros; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucketFor(0), 0);
  EXPECT_EQ(Histogram::bucketFor(1), 1);
  EXPECT_EQ(Histogram::bucketFor(2), 2);
  EXPECT_EQ(Histogram::bucketFor(3), 2);
  EXPECT_EQ(Histogram::bucketFor(4), 3);
  EXPECT_EQ(Histogram::bucketFor(1023), 10);
  EXPECT_EQ(Histogram::bucketFor(1024), 11);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(TelemetryHistogram, RecordAggregates) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(100);
  h.record(7);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 108u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucketFor(100)), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(TelemetryRace, EightThreadIncrements) {
  Counter& c = counter(CounterId::TraceInstructions);
  Histogram& h = histogram(HistogramId::TraceQueueDepth);
  const uint64_t cBefore = c.value();
  const uint64_t hBefore = h.count();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<uint64_t>(i));
      }
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value() - cBefore, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.count() - hBefore, uint64_t{kThreads} * kPerThread);
  EXPECT_GE(h.max(), uint64_t{kPerThread - 1});
}

TEST(TelemetrySnapshot, NamesEveryInstrument) {
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counters.size(),
            static_cast<size_t>(CounterId::kCount));
  EXPECT_EQ(snap.gauges.size(), static_cast<size_t>(GaugeId::kCount));
  EXPECT_EQ(snap.histograms.size(),
            static_cast<size_t>(HistogramId::kCount));
  for (const auto& c : snap.counters) EXPECT_NE(c.name, nullptr);
  for (const auto& h : snap.histograms) EXPECT_NE(h.name, nullptr);
}

TEST(TelemetryTrace, SpansNestInExportedJson) {
  clearTrace();
  setTracing(true);
  // A synthetic rewrite-shaped tree with fully controlled timestamps.
  const uint64_t t0 = nowNs();
  recordSpan("tt_decode", t0 + 1000, t0 + 2000);
  recordSpan("tt_emit", t0 + 2000, t0 + 5000);
  recordSpan("tt_rewrite", t0 + 1000, t0 + 6000,
             "\"fn\":\"brew::probe@deadbeef\"");
  setTracing(false);

  char path[] = "/tmp/brew_trace_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeTrace(path));
  const std::string json = slurp(path);
  std::remove(path);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("brew::probe@deadbeef"), std::string::npos);

  double decodeB = 0, decodeE = 0, emitB = 0, emitE = 0, rwB = 0, rwE = 0;
  ASSERT_TRUE(findSpan(json, "tt_decode", &decodeB, &decodeE));
  ASSERT_TRUE(findSpan(json, "tt_emit", &emitB, &emitE));
  ASSERT_TRUE(findSpan(json, "tt_rewrite", &rwB, &rwE));
  // Children fall inside the parent and do not overlap each other.
  EXPECT_GE(decodeB, rwB);
  EXPECT_LE(decodeE, rwE);
  EXPECT_GE(emitB, decodeE);
  EXPECT_LE(emitE, rwE);
  clearTrace();
}

TEST(TelemetryTrace, DisabledRecordsNothing) {
  clearTrace();
  setTracing(false);
  recordSpan("tt_invisible", 100, 200);
  { SpanScope scope("tt_scoped_invisible"); }

  char path[] = "/tmp/brew_trace_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeTrace(path));
  const std::string json = slurp(path);
  std::remove(path);
  EXPECT_EQ(json.find("tt_invisible"), std::string::npos);
}

TEST(TelemetryTrace, SpanScopeRecordsWithArgs) {
  clearTrace();
  setTracing(true);
  {
    SpanScope scope("tt_scope");
    EXPECT_TRUE(scope.active());
    scope.arg("fn", "0x%x", 0xabcd);
    scope.arg("key", "%s", "k1");
  }
  setTracing(false);

  char path[] = "/tmp/brew_trace_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeTrace(path));
  const std::string json = slurp(path);
  std::remove(path);
  EXPECT_NE(json.find("\"tt_scope\""), std::string::npos);
  EXPECT_NE(json.find("\"fn\":\"0xabcd\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"k1\""), std::string::npos);
  clearTrace();
}

TEST(TelemetryJson, ExportsRegistry) {
  counter(CounterId::RewriteAttempts).add();
  char path[] = "/tmp/brew_metrics_test_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(writeJson(path));
  const std::string json = slurp(path);
  std::remove(path);
  EXPECT_NE(json.find("\"rewrite.attempts\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"phase.emit_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TelemetryCapi, SnapshotMirrorsRegistry) {
  counter(CounterId::CacheHits).add(3);
  brew_telemetry snap{};
  brew_telemetry_snapshot(&snap);
  EXPECT_EQ(snap.counter_count, static_cast<size_t>(CounterId::kCount));
  bool found = false;
  for (size_t i = 0; i < snap.counter_count; ++i) {
    if (std::strcmp(snap.counters[i].name, "cache.hits") != 0) continue;
    found = true;
    EXPECT_EQ(snap.counters[i].value,
              counter(CounterId::CacheHits).value());
  }
  EXPECT_TRUE(found);
  EXPECT_GE(snap.histogram_count, static_cast<size_t>(HistogramId::kCount));
}

}  // namespace
}  // namespace brew::telemetry
