// Support-layer tests: errors, hexdump, memory map, printer output, PRNG
// determinism.
#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/printer.hpp"
#include "support/error.hpp"
#include "support/hexdump.hpp"
#include "support/memory_map.hpp"
#include "support/perf_map.hpp"
#include "support/prng.hpp"

#include <unistd.h>
#include <cstdio>

namespace brew {
namespace {

TEST(ErrorTest, MessageFormatting) {
  Error e{ErrorCode::UndecodableInstruction, 0x1234, "bad byte"};
  const std::string msg = e.message();
  EXPECT_NE(msg.find("UndecodableInstruction"), std::string::npos);
  EXPECT_NE(msg.find("0x1234"), std::string::npos);
  EXPECT_NE(msg.find("bad byte"), std::string::npos);

  Error plain{ErrorCode::VariantLimit, 0, ""};
  EXPECT_EQ(plain.message(), "VariantLimit");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> bad = Error{ErrorCode::InvalidArgument, 0, "nope"};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::InvalidArgument);

  Status s;
  EXPECT_TRUE(s.ok());
  Status f = Error{ErrorCode::CodeBufferFull, 0, ""};
  EXPECT_FALSE(f.ok());
}

TEST(HexDumpTest, Bytes) {
  const uint8_t data[] = {0x48, 0x89, 0xf8};
  EXPECT_EQ(hexBytes(data), "48 89 f8");
  EXPECT_EQ(hexBytes(std::span<const uint8_t>{}), "");
  const std::string dump = hexDump(data, 0x1000);
  EXPECT_NE(dump.find("001000"), std::string::npos);
  EXPECT_NE(dump.find("48 89 f8"), std::string::npos);
}

TEST(MemoryMapTest, ClassifiesKnownRegions) {
  // Code of this test binary: read-only (r-xp counts as writable==false?
  // r-x has perms[1] == '-' only for r--; r-xp has x in perms[2]).
  // String literals live in r--p .rodata: readable, not writable.
  static const char* literal = "brew-memory-map-probe";
  EXPECT_TRUE(
      isReadOnlyMapping(reinterpret_cast<uint64_t>(literal), 8));
  // Writable static data is not read-only.
  static int64_t writable = 5;
  EXPECT_FALSE(
      isReadOnlyMapping(reinterpret_cast<uint64_t>(&writable), 8));
  // Stack is not read-only.
  int64_t local = 7;
  EXPECT_FALSE(isReadOnlyMapping(reinterpret_cast<uint64_t>(&local), 8));
  // Unmapped garbage address.
  EXPECT_FALSE(isReadOnlyMapping(0x10, 8));
  invalidateMemoryMapCache();
  EXPECT_TRUE(
      isReadOnlyMapping(reinterpret_cast<uint64_t>(literal), 8));
}

TEST(PrngTest, DeterministicAcrossRuns) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Prng c(124);
  EXPECT_NE(a.next(), c.next());
}

TEST(PrngTest, RangeBounds) {
  Prng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PrinterTest, InstructionText) {
  auto text = [](std::initializer_list<uint8_t> bytes) {
    std::vector<uint8_t> buf(bytes);
    auto instr = isa::decodeOne(buf, 0x1000);
    EXPECT_TRUE(instr.ok());
    return instr.ok() ? isa::toString(*instr) : std::string();
  };
  EXPECT_EQ(text({0x49, 0x89, 0xf8}), "mov r8, rdi");
  EXPECT_EQ(text({0x85, 0xff}), "test edi, edi");
  EXPECT_EQ(text({0x48, 0x83, 0xec, 0x18}), "sub rsp, 0x18");
  EXPECT_EQ(text({0xf2, 0x0f, 0x59, 0x42, 0xf8}),
            "mulsd xmm0, qword ptr [rdx-0x8]");
  EXPECT_EQ(text({0xf2, 0x41, 0x0f, 0x10, 0x04, 0xc0}),
            "movsd xmm0, qword ptr [r8+rax*8]");
  EXPECT_EQ(text({0x7e, 0x10}), "jle 0x1012");
  EXPECT_EQ(text({0xc3}), "ret");
  EXPECT_EQ(text({0x48, 0x99}), "cqo");
  EXPECT_EQ(text({0x0f, 0x94, 0xc0}), "sete al");
  EXPECT_EQ(text({0x48, 0x0f, 0x44, 0xc1}), "cmove rax, rcx");
}

TEST(PrinterTest, DisassemblyStopsAtRet) {
  const uint8_t code[] = {0x90, 0xc3, 0xcc, 0xcc};
  const std::string out = isa::disassemble(code, 0);
  EXPECT_NE(out.find("nop"), std::string::npos);
  EXPECT_NE(out.find("ret"), std::string::npos);
  EXPECT_EQ(out.find("int3"), std::string::npos);
}

TEST(PrinterTest, UndecodableNoted) {
  const uint8_t code[] = {0x0f, 0xa2};
  const std::string out = isa::disassemble(code, 0);
  EXPECT_NE(out.find("undecodable"), std::string::npos);
}

TEST(PerfMapTest, WritesEntriesWhenEnabled) {
  setPerfMap(true);
  perfMapRegister(reinterpret_cast<const void*>(0x123400), 0x40,
                  "brew_test_symbol");
  setPerfMap(false);
  perfMapRegister(reinterpret_cast<const void*>(0x99), 1, "not_written");
  char path[64];
  std::snprintf(path, sizeof path, "/tmp/perf-%d.map", getpid());
  std::FILE* f = std::fopen(path, "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char line[256];
  while (std::fgets(line, sizeof line, f)) content += line;
  std::fclose(f);
  EXPECT_NE(content.find("123400 40 brew_test_symbol"), std::string::npos);
  EXPECT_EQ(content.find("not_written"), std::string::npos);
}

}  // namespace
}  // namespace brew
